"""Tests for repro.obs.attribution: the cost-attribution engine,
streaming anomaly detection, and the store-backed calibration layer."""

import pytest

from repro.obs import RunStore
from repro.obs.attribution import (
    COVERAGE_TARGET,
    UNKNOWN,
    AnomalyConfig,
    CommitAnomalyDetector,
    attribute_events,
    attribute_store_run,
    attribution_event_fields,
    calibration_from_store,
    design_baseline,
    render_attribution,
    render_calibration,
    replay_anomalies,
    stage_cost_metrics,
)


def _stream():
    """A hand-built trace: 4 components, 2 stage regions, one rewrite
    run inside a [1.0, 1.5] wall window (0.45s of commit gaps + a 0.05s
    tail)."""
    return [
        {"ev": "run_begin", "t": 0.0, "design": "m4", "method": "dyposub"},
        {"ev": "stage_map", "t": 0.05, "architecture": "ripple",
         "risk_factor": 1.2, "risk_score": 55.0,
         "regions": {"ppg": 2, "fsa": 2},
         "components": {"0": "ppg", "1": "ppg", "2": "fsa", "3": "fsa"}},
        {"ev": "rewrite_begin", "t": 1.0, "size": 10, "components": 4,
         "ring": "exact"},
        {"ev": "attempt", "t": 1.05, "comp": 3, "kind": "FA", "before": 10,
         "size": 14, "compact": False, "growth": True},
        {"ev": "step", "t": 1.1, "i": 1, "comp": 3, "kind": "FA",
         "size": 14},
        {"ev": "attempt", "t": 1.15, "comp": 2, "kind": "FA", "before": 14,
         "size": 20, "compact": False, "growth": True},
        {"ev": "step", "t": 1.3, "i": 2, "comp": 2, "kind": "FA",
         "size": 20},
        {"ev": "attempt", "t": 1.35, "comp": 1, "kind": "HA", "before": 20,
         "size": 12, "compact": True, "growth": False},
        {"ev": "step", "t": 1.4, "i": 3, "comp": 1, "kind": "HA",
         "size": 12},
        {"ev": "step", "t": 1.45, "i": 4, "comp": 0, "kind": "HA",
         "size": 6},
        {"ev": "span", "t": 1.0, "name": "rewrite", "path": "rewrite",
         "dur": 0.5},
        {"ev": "run_end", "t": 2.0, "status": "correct", "seconds": 2.0},
    ]


class TestAttributeEvents:
    def test_growth_lands_in_the_right_stage(self):
        report = attribute_events(_stream())
        assert report["architecture"] == "ripple"
        assert report["risk"] == {"factor": 1.2, "score": 55.0}
        assert report["sp0"] == 10
        assert report["rewrite_runs"] == 1
        # all growth (4 + 6 monomials) came from the two fsa commits
        assert report["by_stage"]["fsa"]["growth"] == 10
        assert report["by_stage"]["fsa"]["commits"] == 2
        assert report["by_stage"]["ppg"]["growth"] == 0
        assert report["growth"] == {"total": 10, "attributed": 10,
                                    "unattributed": 0,
                                    "attributed_fraction": 1.0}

    def test_wall_time_windows_and_explicit_tail(self):
        report = attribute_events(_stream())
        wall = report["wall"]
        assert wall["rewrite_seconds"] == pytest.approx(0.5)
        # commit gaps: 0.1 + 0.2 + 0.1 + 0.05; the remaining 0.05s
        # after the final commit is the reported tail, never dropped
        assert wall["attributed_seconds"] == pytest.approx(0.45)
        assert wall["unattributed_seconds"] == pytest.approx(0.05)
        assert wall["attributed_fraction"] == pytest.approx(0.9)
        assert report["by_stage"]["fsa"]["seconds"] == pytest.approx(0.3)
        assert report["by_stage"]["ppg"]["seconds"] == pytest.approx(0.15)

    def test_rule_labels_join_the_attempt_stream(self):
        report = attribute_events(_stream())
        rules = {record["step"]: record["rule"]
                 for record in report["commits"]}
        assert rules[1] == "FA/expand"
        assert rules[3] == "HA/compact"
        # step 4's component never appeared in an attempt: kind only
        assert rules[4] == "HA"
        assert report["by_rule"]["FA/expand"]["growth"] == 10

    def test_cells_cross_stage_and_rule(self):
        report = attribute_events(_stream())
        keys = {(cell["stage"], cell["rule"])
                for cell in report["cells"]}
        assert ("fsa", "FA/expand") in keys
        assert ("ppg", "HA/compact") in keys

    def test_trace_without_stage_map_buckets_unknown(self):
        events = [e for e in _stream() if e["ev"] != "stage_map"]
        report = attribute_events(events)
        assert set(report["by_stage"]) == {UNKNOWN}
        # unknown-stage commits count against coverage
        assert report["wall"]["attributed_fraction"] == 0.0
        assert report["growth"]["attributed_fraction"] == 0.0

    def test_escalation_rerun_opens_a_second_window(self):
        events = _stream()[:-1]  # keep the run open
        events += [
            {"ev": "rewrite_begin", "t": 3.0, "size": 6, "components": 4,
             "ring": "mod"},
            {"ev": "step", "t": 3.2, "i": 1, "comp": 3, "kind": "FA",
             "size": 9},
            {"ev": "span", "t": 3.0, "name": "rewrite", "path": "rewrite",
             "dur": 0.25},
            {"ev": "run_end", "t": 4.0, "status": "correct", "seconds": 4.0},
        ]
        report = attribute_events(events)
        assert report["rewrite_runs"] == 2
        assert report["sp0"] == 10  # anchored at the first run
        assert report["wall"]["rewrite_seconds"] == pytest.approx(0.75)
        runs = {record["run"] for record in report["commits"]}
        assert runs == {1, 2}

    def test_truncated_trace_closes_at_the_last_commit(self):
        # a crashed run has no rewrite span event: the window must
        # close at the last observed commit instead of being dropped
        events = [e for e in _stream() if e["ev"] not in ("span", "run_end")]
        report = attribute_events(events)
        assert report["status"] is None
        assert report["wall"]["rewrite_seconds"] == pytest.approx(0.45)
        assert report["wall"]["unattributed_seconds"] == pytest.approx(0.0)

    def test_profiler_samples_attach_to_commits(self):
        events = _stream()
        events.insert(-1, {"ev": "profile", "t": 1.9, "samples": 4,
                           "commits": {"2": 3, "9": 1}})
        report = attribute_events(events)
        by_step = {record["step"]: record for record in report["commits"]}
        assert by_step[2]["samples"] == 3
        assert report["samples_unassigned"] == 1  # no step 9 existed
        assert report["by_stage"]["fsa"]["samples"] == 3

    def test_rss_samples_bin_into_commit_windows(self):
        events = _stream()
        events[-1:-1] = [
            {"ev": "resource_sample", "t": 0.5, "rss_kb": 100},   # baseline
            {"ev": "resource_sample", "t": 1.05, "rss_kb": 200},  # commit 1
            {"ev": "resource_sample", "t": 1.35, "rss_kb": 300},  # commit 3
            {"ev": "resource_sample", "t": 1.48, "rss_kb": 250},  # tail
        ]
        report = attribute_events(events)
        rss = report["rss"]
        assert rss["samples"] == 3
        assert rss["baseline_kb"] == 100
        assert rss["peak_kb"] == 300
        assert rss["delta_kb"] == pytest.approx(200)
        assert rss["by_stage"]["fsa"]["peak_kb"] == 200
        assert rss["by_stage"]["ppg"]["peak_kb"] == 300
        assert rss["by_stage"][UNKNOWN]["samples"] == 1

    def test_no_resource_telemetry_is_none(self):
        assert attribute_events(_stream())["rss"] is None

    def test_empty_stream(self):
        report = attribute_events([])
        assert report["rewrite_runs"] == 0
        assert report["commits"] == []
        assert report["wall"]["rewrite_seconds"] == 0.0
        assert report["wall"]["attributed_fraction"] == 1.0

    def test_coverage_meets_the_acceptance_target(self):
        # the synthetic stream mirrors real traces: >= 95% of measured
        # wall time and growth is assigned to commit+rule+stage
        report = attribute_events(_stream())
        assert report["growth"]["attributed_fraction"] >= COVERAGE_TARGET


class TestAnomalyDetector:
    def test_rp012_fires_on_an_ewma_outlier(self):
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        for i, size in enumerate((10, 11, 12), start=1):
            assert detector.observe_step({"i": i, "size": size}) == []
        fired = detector.observe_step({"i": 4, "size": 100, "comp": 7,
                                       "kind": "FA"})
        assert [d.code for d in fired] == ["RP012"]
        assert fired[0].context["step"] == 4
        assert fired[0].context["ratio"] > 2.0
        assert "7" not in fired[0].message  # comp rides in context only

    def test_ewma_absorbs_a_regime_change(self):
        # a genuine level shift fires once, not on every later commit
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, alpha=0.9, floor=1,
                          min_history=3))
        for i, size in enumerate((10, 10, 10, 100, 100, 100), start=1):
            detector.observe_step({"i": i, "size": size})
        assert len(detector.anomalies) == 1

    def test_floor_shields_small_polynomials(self):
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=64, min_history=1))
        for i, size in enumerate((4, 4, 40), start=1):
            detector.observe_step({"i": i, "size": size})
        assert detector.anomalies == []

    def test_rp013_fires_once_against_the_store_baseline(self):
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=100.0, floor=1, min_history=1),
            baseline={"peak": 100.0, "runs": 5}, design="m8")
        detector.observe_step({"i": 1, "size": 120})  # within margin
        detector.observe_step({"i": 2, "size": 130})
        detector.observe_step({"i": 3, "size": 140})
        codes = [d.code for d in detector.anomalies]
        assert codes == ["RP013"]
        assert detector.anomalies[0].context["design"] == "m8"

    def test_reset_clears_run_local_state(self):
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        for i in range(1, 4):
            detector.observe_step({"i": i, "size": 10})
        detector.reset()
        assert detector.observe_step({"i": 1, "size": 100}) == []

    def test_replay_over_a_recorded_stream(self):
        events = _stream()[:-2] + [
            {"ev": "step", "t": 1.46, "i": 5, "comp": 0, "kind": "HA",
             "size": 500},
        ]
        diags = replay_anomalies(
            events, config=AnomalyConfig(tolerance=2.0, floor=1,
                                         min_history=3))
        assert [d.code for d in diags] == ["RP012"]

    def test_design_baseline_from_store(self):
        with RunStore() as store:
            assert design_baseline(store, "m8") is None
            store.add_run("m8", "dyposub", max_poly_size=100)
            store.add_run("m8", "dyposub", max_poly_size=120)
            baseline = design_baseline(store, "m8")
            assert baseline["runs"] == 2
            assert 100 < baseline["peak"] <= 120


class TestStoreIntegration:
    def test_stage_cost_metrics_flatten_the_report(self):
        metrics = stage_cost_metrics(attribute_events(_stream()))
        assert metrics["attr:stage:fsa:growth"] == 10
        assert metrics["attr:stage:ppg:seconds"] == pytest.approx(0.15)
        assert metrics["attr:rule:FA/expand:growth"] == 10
        assert metrics["attr:wall:rewrite:seconds"] == pytest.approx(0.5)
        assert metrics["attr:unattributed:seconds"] == pytest.approx(0.05)
        assert metrics["attr:risk:score"] == 55.0

    def test_unknown_run_raises(self):
        with RunStore() as store:
            with pytest.raises(ValueError, match="no such run"):
                attribute_store_run(store, 999)

    def test_report_rebuilds_from_v3_rows(self):
        live = attribute_events(_stream())
        with RunStore() as store:
            run_id = store.add_run(
                "m4", "dyposub", status="correct", seconds=2.0,
                max_poly_size=20,
                commits=[{"step": r["step"], "component": r["comp"],
                          "kind": r["kind"], "size": r["size"]}
                         for r in live["commits"]],
                metrics={**stage_cost_metrics(live),
                         "attr:sp0:size": live["sp0"]},
                attribution=live["cells"],
                meta={"architecture": live["architecture"]})
            stored = attribute_store_run(store, run_id)
        assert stored["source"] == "store"
        assert stored["architecture"] == "ripple"
        assert stored["by_stage"]["fsa"]["growth"] == \
            live["by_stage"]["fsa"]["growth"]
        assert stored["wall"]["rewrite_seconds"] == \
            live["wall"]["rewrite_seconds"]
        assert stored["growth"]["attributed_fraction"] == \
            live["growth"]["attributed_fraction"]
        # commit growth is recomputed from the SP_i curve + SP_0 anchor
        growth = {r["step"]: r["growth"] for r in stored["commits"]}
        assert growth == {1: 4, 2: 6, 3: 0, 4: 0}

    def test_ingest_then_explain_round_trip(self):
        with RunStore() as store:
            run_id = store.ingest_events(_stream(), "m4", source="test")
            stored = attribute_store_run(store, run_id)
            assert stored["by_stage"]["fsa"]["growth"] == 10
            assert stored["risk"]["score"] == 55.0


class TestCalibration:
    def _seed(self, store, design, risk, peak, fsa_growth, ppg_growth):
        store.add_run(design, "dyposub", max_poly_size=peak,
                      metrics={"attr:risk:score": risk,
                               "attr:stage:fsa:growth": fsa_growth,
                               "attr:stage:ppg:growth": ppg_growth})

    def test_agreement_over_stored_series(self):
        with RunStore() as store:
            self._seed(store, "hot", 90.0, 4000, 3600, 400)
            self._seed(store, "warm", 50.0, 400, 200, 200)
            self._seed(store, "cool", 10.0, 40, 0, 40)
            calibration = calibration_from_store(store)
        assert calibration["samples"] == 3
        risk = calibration["risk_vs_peak"]
        assert risk["spearman"] == pytest.approx(1.0)
        assert risk["agreement"]["top"] == risk["agreement"]["count"]
        shares = calibration["stage_costs"]["hot/none"]["shares"]
        assert shares["fsa"] == pytest.approx(0.9)

    def test_series_without_risk_scores_are_skipped(self):
        with RunStore() as store:
            store.add_run("plain", "dyposub", max_poly_size=10)
            calibration = calibration_from_store(store)
        assert calibration["samples"] == 0
        assert calibration["risk_vs_peak"]["spearman"] is None


class TestRendering:
    def test_attribution_report_headline(self):
        text = render_attribution(attribute_events(_stream()))
        assert "100% of SP_i growth landed in 2 commit(s) " \
            "inside the fsa region" in text
        assert "Cost by stage region" in text
        assert "Cost by substitution rule" in text
        assert "FA/expand" in text
        assert "unattributed remainder" in text

    def test_top_commits_table_respects_the_limit(self):
        text = render_attribution(attribute_events(_stream()), top=2)
        assert "Top 2 commits by SP_i growth" in text

    def test_calibration_rendering(self):
        with RunStore() as store:
            store.add_run("hot", "dyposub", max_poly_size=4000,
                          metrics={"attr:risk:score": 90.0})
            store.add_run("cool", "dyposub", max_poly_size=40,
                          metrics={"attr:risk:score": 10.0})
            text = render_calibration(calibration_from_store(store))
        assert "Spearman +1.000" in text
        assert "Predicted risk vs observed cost" in text

    def test_calibration_rendering_needs_two_series(self):
        with RunStore() as store:
            text = render_calibration(calibration_from_store(store))
        assert "need at least 2 series" in text

    def test_event_fields_are_compact_aggregates(self):
        fields = attribution_event_fields(attribute_events(_stream()))
        assert fields["architecture"] == "ripple"
        assert fields["rewrite_runs"] == 1
        assert fields["stages"]["fsa"]["growth"] == 10
        assert fields["rules"]["FA/expand"]["commits"] == 2
        assert "commits" not in fields  # no per-commit payload
