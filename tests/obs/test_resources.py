"""Tests for repro.obs.resources: the resource tracker and sampling
profiler (deterministic paths — no timing assertions)."""

import time

from repro.core import verify_multiplier
from repro.genmul import generate_multiplier
from repro.obs import Recorder, ResourceTracker, SamplingProfiler
from repro.obs.resources import (
    current_phase,
    read_peak_rss_kb,
    read_rss_kb,
    render_hotspot_table,
    render_resource_table,
)


class TestRssReaders:
    def test_rss_is_positive(self):
        assert read_rss_kb() > 0
        assert read_peak_rss_kb() >= read_rss_kb() * 0.5


class TestCurrentPhase:
    def test_reads_the_open_span_stack(self):
        recorder = Recorder()
        assert current_phase(recorder) == ""
        with recorder.span("rewrite"):
            assert current_phase(recorder) == "rewrite"
            with recorder.span("reduce"):
                assert current_phase(recorder) == "rewrite.reduce"
        assert current_phase(recorder) == ""

    def test_walks_wrapper_chains(self):
        recorder = Recorder()
        tracker = ResourceTracker(recorder, interval=None,
                                  trace_malloc=False)
        with recorder.span("model"):
            assert current_phase(tracker) == "model"
        tracker.stop()


class TestResourceTracker:
    def _tracker(self, **kwargs):
        kwargs.setdefault("interval", None)  # no sampler thread
        kwargs.setdefault("trace_malloc", True)
        return ResourceTracker(Recorder(), **kwargs)

    def test_top_level_spans_emit_phase_resources(self):
        tracker = self._tracker()
        with tracker.span("rewrite"):
            ballast = [list(range(200)) for _ in range(200)]
            del ballast
        events = [e for e in tracker.events
                  if e["ev"] == "phase_resources"]
        assert len(events) == 1
        event = events[0]
        assert event["phase"] == "rewrite"
        assert event["rss_peak_kb"] >= event["rss_kb"] * 0.5
        assert "tracemalloc_kb" in event
        assert event["tracemalloc_peak_kb"] > 0
        assert tracker.phase_resources["rewrite"]["rss_peak_kb"] > 0
        tracker.stop()

    def test_nested_spans_roll_up_to_the_top_level(self):
        tracker = self._tracker()
        with tracker.span("rewrite"):
            with tracker.span("reduce"):
                pass
        phases = [e["phase"] for e in tracker.events
                  if e["ev"] == "phase_resources"]
        assert phases == ["rewrite"]
        tracker.stop()

    def test_repeated_phases_aggregate(self):
        tracker = self._tracker(trace_malloc=False)
        with tracker.span("rewrite"):
            pass
        with tracker.span("rewrite"):
            pass
        slot = tracker.phase_resources["rewrite"]
        assert slot["gc_collections"] >= 0
        events = [e for e in tracker.events
                  if e["ev"] == "phase_resources"]
        assert len(events) == 2
        tracker.stop()

    def test_stop_is_idempotent_and_emits_one_summary(self):
        tracker = self._tracker()
        tracker.stop()
        tracker.stop()
        summaries = [e for e in tracker.events
                     if e["ev"] == "resources_summary"]
        assert len(summaries) == 1
        assert summaries[0]["peak_rss_kb"] > 0
        assert summaries[0]["rss_samples"] >= 2  # first + last

    def test_sampler_thread_collects_and_stops(self):
        tracker = ResourceTracker(Recorder(), interval=0.01,
                                  trace_malloc=False)
        time.sleep(0.08)
        tracker.stop()
        samples = [e for e in tracker.events
                   if e["ev"] == "resource_sample"]
        assert len(samples) >= 2
        assert all(s["rss_kb"] > 0 for s in samples)
        assert tracker._thread is None

    def test_recorder_interface_delegates(self):
        inner = Recorder()
        tracker = ResourceTracker(inner, interval=None,
                                  trace_malloc=False)
        tracker.event("step", i=1, size=2)
        tracker.count("rewrite.commits")
        tracker.observe("rewrite.sp_size", 2)
        tracker.replay({"ev": "note", "t": 0.5})
        assert inner.counters == {"rewrite.commits": 1}
        kinds = [e["ev"] for e in inner.events
                 if e["ev"] != "resource_sample"]
        assert kinds == ["step", "note"]
        tracker.stop()

    def test_pipeline_parity_under_tracker(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        plain = verify_multiplier(aig, record_trace=True)
        tracker = self._tracker()
        tracked = verify_multiplier(aig, record_trace=True,
                                    recorder=tracker)
        tracker.stop()
        assert plain.status == tracked.status == "correct"
        assert plain.stats == tracked.stats
        assert plain.trace == tracked.trace
        phases = {e["phase"] for e in tracker.events
                  if e["ev"] == "phase_resources"}
        assert "rewrite" in phases


class TestSamplingProfiler:
    def test_samples_attribute_to_open_phases(self):
        recorder = Recorder()
        profiler = SamplingProfiler(recorder, interval=0.002)
        profiler.start()
        deadline = time.perf_counter() + 0.5
        with recorder.span("rewrite"):
            while (profiler.samples < 5
                   and time.perf_counter() < deadline):
                sum(i * i for i in range(2000))
        summary = profiler.stop()
        assert summary["samples"] >= 5
        assert summary["phases"].get("rewrite", 0) >= 5
        assert summary["attributed_fraction"] > 0.5
        assert summary["hotspots"]
        assert summary["hotspots"][0]["samples"] >= 1
        # exactly one profile event lands in the recorder
        profiles = [e for e in recorder.events if e["ev"] == "profile"]
        assert len(profiles) == 1
        assert profiler.stop() == summary  # idempotent, no second event
        assert len([e for e in recorder.events
                    if e["ev"] == "profile"]) == 1

    def test_commit_attribution_buckets_the_upcoming_step(self):
        # time between commit i and commit i+1 is spent constructing
        # commit i+1, so samples after step 7 belong to bucket 8 — not
        # to the stale last_step
        recorder = Recorder()
        profiler = SamplingProfiler(recorder, interval=0.002)
        recorder.event("step", i=7, size=3)
        profiler.start()
        deadline = time.perf_counter() + 0.5
        with recorder.span("rewrite"):
            while (profiler.samples < 3
                   and time.perf_counter() < deadline):
                sum(i * i for i in range(2000))
        summary = profiler.stop()
        assert summary["commits"].get("8", 0) >= 1
        assert "7" not in summary["commits"]

    def test_samples_before_the_first_commit_bucket_under_step_one(self):
        # regression: rewrite-phase samples taken before any step event
        # used to be dropped entirely (last_step is None); they are the
        # cost of constructing commit 1
        recorder = Recorder()
        profiler = SamplingProfiler(recorder, interval=0.002)
        profiler.start()
        deadline = time.perf_counter() + 0.5
        with recorder.span("rewrite"):
            while (profiler.samples < 3
                   and time.perf_counter() < deadline):
                sum(i * i for i in range(2000))
        summary = profiler.stop()
        assert summary["commits"].get("1", 0) >= 1

    def test_collapsed_stack_format(self):
        profiler = SamplingProfiler(None, interval=0.002)
        profiler.by_stack = {"a.main;a.inner": 3, "a.main": 1}
        text = profiler.collapsed()
        assert text.splitlines() == ["a.main;a.inner 3", "a.main 1"]

    def test_no_samples_is_not_an_error(self):
        profiler = SamplingProfiler(Recorder(), interval=0.002)
        summary = profiler.stop()  # never started
        assert summary["samples"] == 0
        assert render_hotspot_table(summary) == \
            "(no profiler samples collected)"


class TestRendering:
    def test_hotspot_table_mentions_the_attribution_rate(self):
        profile = {
            "samples": 100, "interval": 0.005, "attributed": 97,
            "attributed_fraction": 0.97,
            "phases": {"rewrite": 80, "model": 17, "(outside spans)": 3},
            "hotspots": [{"func": "spoly.reduce", "samples": 60,
                          "share": 0.6}],
            "commits": {"12": 30},
        }
        text = render_hotspot_table(profile)
        assert "100 samples at 5ms" in text
        assert "97% attributed to pipeline phases" in text
        assert "spoly.reduce" in text
        assert "Hottest rewrite commits" in text

    def test_resource_table_renders_phases_and_totals(self):
        phase_resources = {"rewrite": {"rss_peak_kb": 50000,
                                       "tracemalloc_kb": 120.5,
                                       "tracemalloc_peak_kb": 300.0,
                                       "gc_collections": 2}}
        summary = {"peak_rss_kb": 51000, "tracemalloc_peak_kb": 300.0,
                   "gc_collections": 3}
        text = render_resource_table(phase_resources, summary)
        assert "rewrite" in text
        assert "50000" in text
        assert "run total: peak RSS 51000 KiB" in text

    def test_empty_resource_table(self):
        assert render_resource_table({}, None) == \
            "(no resource telemetry recorded)"
