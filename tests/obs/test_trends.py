"""Tests for repro.obs.trends: EWMA baselines and the regression gate."""

import pytest

from repro.obs import RunStore
from repro.obs.trends import (
    TrendConfig,
    detect_trends,
    ewma,
    regressions,
    render_trends,
    trend_for,
)


def _seed(store, seconds_list, design="m8", method="dyposub", **extra):
    for seconds in seconds_list:
        store.add_run(design, method, seconds=seconds, **extra)


class TestEwma:
    def test_empty_is_none(self):
        assert ewma([]) is None

    def test_single_value(self):
        assert ewma([3.0]) == 3.0

    def test_weights_newer_points(self):
        # alpha=0.5 over [1, 2]: 0.5*2 + 0.5*1 = 1.5
        assert ewma([1.0, 2.0], alpha=0.5) == pytest.approx(1.5)
        # drifting history pulls the baseline along
        assert ewma([1.0, 1.0, 4.0], alpha=0.5) > ewma([1.0, 1.0, 1.0],
                                                       alpha=0.5)


class TestTrendFor:
    def test_no_history_with_single_point(self):
        with RunStore() as store:
            _seed(store, [1.0])
            verdict = trend_for(store, "m8", "none", "dyposub", "seconds")
            assert verdict["verdict"] == "no-history"
            assert verdict["points"] == 1

    def test_stable_history_is_ok(self):
        with RunStore() as store:
            _seed(store, [1.0, 1.02, 0.98, 1.01])
            verdict = trend_for(store, "m8", "none", "dyposub", "seconds")
            assert verdict["verdict"] == "ok"
            assert verdict["ratio"] == pytest.approx(1.0, abs=0.1)

    def test_injected_2x_slowdown_regresses(self):
        # the acceptance scenario: flat history, then a 2x slowdown
        with RunStore() as store:
            _seed(store, [1.0, 1.0, 1.0, 2.0])
            verdict = trend_for(store, "m8", "none", "dyposub", "seconds")
            assert verdict["verdict"] == "regression"
            assert verdict["ratio"] == pytest.approx(2.0)
            assert verdict["run_id"] == 4

    def test_large_speedup_is_improved(self):
        with RunStore() as store:
            _seed(store, [1.0, 1.0, 0.5])
            verdict = trend_for(store, "m8", "none", "dyposub", "seconds")
            assert verdict["verdict"] == "improved"

    def test_noise_floor_suppresses_time_metrics(self):
        with RunStore() as store:
            _seed(store, [0.001, 0.004])  # sub-floor wall clock
            verdict = trend_for(store, "m8", "none", "dyposub", "seconds")
            assert verdict["verdict"] == "noise-floor"

    def test_non_time_metric_ignores_floor(self):
        with RunStore() as store:
            store.add_run("m8", "dyposub", max_poly_size=10)
            store.add_run("m8", "dyposub", max_poly_size=40)
            verdict = trend_for(store, "m8", "none", "dyposub",
                                "max_poly_size")
            assert verdict["verdict"] == "regression"

    def test_normalized_metric_borrows_phase_floor(self):
        # normalized costs are unitless; the noise-floor decision must
        # come from the wall clock of the matching phase
        with RunStore() as store:
            for seconds in (0.001, 0.001, 0.001):
                store.add_run("microbench-small", "perf_bench",
                              phases={"spec_build": seconds},
                              metrics={"normalized:spec_build": seconds * 100})
            verdict = trend_for(store, "microbench-small", "none",
                                "perf_bench", "metric:normalized:spec_build")
            assert verdict["verdict"] == "noise-floor"

    def test_normalized_metric_gated_above_floor(self):
        with RunStore() as store:
            for seconds, cost in ((1.0, 10.0), (1.0, 10.0), (2.2, 22.0)):
                store.add_run("microbench-small", "perf_bench",
                              phases={"dynamic_rewrite": seconds},
                              metrics={"normalized:dynamic_rewrite": cost})
            verdict = trend_for(store, "microbench-small", "none",
                                "perf_bench",
                                "metric:normalized:dynamic_rewrite")
            assert verdict["verdict"] == "regression"

    def test_attr_seconds_borrows_rewrite_phase_floor(self):
        # attribution wall-time slices are fractions of the rewrite
        # phase; when that phase sits under the noise floor, a jittery
        # slice must not gate
        with RunStore() as store:
            for slice_seconds in (0.0001, 0.0001, 0.003):
                store.add_run("m8", "dyposub",
                              phases={"rewrite": 0.002},
                              metrics={"attr:stage:fsa:seconds":
                                       slice_seconds})
            verdict = trend_for(store, "m8", "none", "dyposub",
                                "metric:attr:stage:fsa:seconds")
            assert verdict["verdict"] == "noise-floor"

    def test_attr_seconds_gated_above_floor(self):
        with RunStore() as store:
            for slice_seconds in (1.0, 1.0, 2.5):
                store.add_run("m8", "dyposub",
                              phases={"rewrite": 2.0},
                              metrics={"attr:stage:fsa:seconds":
                                       slice_seconds})
            verdict = trend_for(store, "m8", "none", "dyposub",
                                "metric:attr:stage:fsa:seconds")
            assert verdict["verdict"] == "regression"

    def test_attr_seconds_floor_falls_back_to_own_history(self):
        # a store ingested without span events has no phase:rewrite
        # twin; the slice's own (sub-floor) history must still shield it
        with RunStore() as store:
            for slice_seconds in (0.0001, 0.0001, 0.003):
                store.add_run("m8", "dyposub",
                              metrics={"attr:rule:FA/compact:seconds":
                                       slice_seconds})
            verdict = trend_for(store, "m8", "none", "dyposub",
                                "metric:attr:rule:FA/compact:seconds")
            assert verdict["verdict"] == "noise-floor"

    def test_first_attr_row_is_no_history_not_regression(self):
        # the first-ever attribution row of a series must never read as
        # a regression (there is nothing to regress from)
        with RunStore() as store:
            store.add_run("m8", "dyposub", phases={"rewrite": 2.0},
                          metrics={"attr:stage:fsa:seconds": 1.5,
                                   "attr:stage:fsa:growth": 900.0})
            for metric in ("metric:attr:stage:fsa:seconds",
                           "metric:attr:stage:fsa:growth"):
                verdict = trend_for(store, "m8", "none", "dyposub", metric)
                assert verdict["verdict"] == "no-history"

    def test_attr_growth_is_not_floor_shielded(self):
        # growth metrics are monomial counts, not seconds — the time
        # noise floor must not hide a real growth regression
        with RunStore() as store:
            for growth in (100.0, 100.0, 400.0):
                store.add_run("m8", "dyposub",
                              phases={"rewrite": 0.0001},
                              metrics={"attr:stage:fsa:growth": growth})
            verdict = trend_for(store, "m8", "none", "dyposub",
                                "metric:attr:stage:fsa:growth")
            assert verdict["verdict"] == "regression"

    def test_tolerance_is_configurable(self):
        with RunStore() as store:
            _seed(store, [1.0, 1.2])
            loose = trend_for(store, "m8", "none", "dyposub", "seconds",
                              TrendConfig(tolerance=0.25))
            tight = trend_for(store, "m8", "none", "dyposub", "seconds",
                              TrendConfig(tolerance=0.1))
            assert loose["verdict"] == "ok"
            assert tight["verdict"] == "regression"


class TestDetectTrends:
    def test_empty_store_has_no_verdicts(self):
        with RunStore() as store:
            assert detect_trends(store) == []
            assert "no series" in render_trends([])

    def test_gate_fires_only_on_regressions(self):
        with RunStore() as store:
            _seed(store, [1.0, 1.0, 2.0], design="slow")
            _seed(store, [1.0, 1.0, 1.0], design="flat")
            verdicts = detect_trends(store)
            bad = regressions(verdicts)
            assert [v["design"] for v in bad] == ["slow"]
            text = render_trends(verdicts)
            assert "REGRESSION" in text
            assert "flat" in text

    def test_metric_restriction(self):
        with RunStore() as store:
            store.add_run("m8", "dyposub", seconds=1.0, max_poly_size=10)
            store.add_run("m8", "dyposub", seconds=1.0, max_poly_size=40)
            verdicts = detect_trends(store, metrics=["max_poly_size"])
            assert [v["metric"] for v in verdicts] == ["max_poly_size"]
            assert verdicts[0]["verdict"] == "regression"
