"""Tests for repro.obs.store: the SQLite run-history database."""

import json

import pytest

from repro.core import verify_multiplier
from repro.genmul import generate_multiplier
from repro.obs import Recorder, RunStore, current_git_rev
from repro.obs.store import SCHEMA_VERSION


def _events(seconds=1.0, sizes=(4, 9, 3), backtracks=1, status="correct",
            method="dyposub"):
    """A minimal synthetic event stream shaped like a real trace."""
    events = [{"ev": "run_begin", "t": 0.0, "method": method, "nodes": 10,
               "width_a": 4, "width_b": 4, "signed": False}]
    for index, size in enumerate(sizes, start=1):
        events.append({"ev": "step", "t": 0.1 * index, "i": index,
                       "comp": index - 1, "kind": "FA", "size": size,
                       "threshold": 0.1})
    for _ in range(backtracks):
        events.append({"ev": "backtrack", "t": 0.5, "comp": 0,
                       "growth": 2.0, "threshold": 0.1})
    events.append({"ev": "span", "t": 0.0, "name": "rewrite",
                   "path": "rewrite", "dur": 0.8})
    events.append({"ev": "run_end", "t": seconds, "status": status,
                   "seconds": seconds, "steps": len(sizes),
                   "max_poly_size": max(sizes)})
    return events


class TestEmptyStore:
    def test_fresh_store_is_empty(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            assert len(store) == 0
            assert store.runs() == []
            assert store.series() == []
            assert store.run(1) is None
            assert store.latest("x", "none", "dyposub") is None

    def test_in_memory_store(self):
        with RunStore() as store:
            assert len(store) == 0

    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        with RunStore(path) as store:
            assert len(store) == 1

    def test_unknown_metric_raises(self):
        with RunStore() as store:
            store.add_run("d", "dyposub", seconds=1.0)
            with pytest.raises(ValueError):
                store.history("d", "none", "dyposub", "bogus")


class TestAddRun:
    def test_add_run_round_trip(self):
        with RunStore() as store:
            run_id = store.add_run(
                "SP-DT-LF 8x8", "dyposub", optimization="dc2",
                status="correct", seconds=1.5, steps=3, max_poly_size=9,
                backtracks=1, threshold_doublings=0,
                phases={"rewrite": 0.8, "spec": 0.1},
                commits=[{"step": 1, "component": 0, "kind": "FA",
                          "size": 4, "threshold": 0.1}, 9, 3],
                metrics={"counter:rewrite.commits": 3},
                git_rev="abc123", meta={"nodes": 10})
            run = store.run(run_id)
            assert run["design"] == "SP-DT-LF 8x8"
            assert run["optimization"] == "dc2"
            assert run["status"] == "correct"
            assert run["git_rev"] == "abc123"
            assert run["meta"] == {"nodes": 10}
            assert run["phases"] == {"rewrite": 0.8, "spec": 0.1}
            assert run["commit_count"] == 3
            # bare sizes become anonymous commit rows at their index
            assert store.sizes(run_id) == [4, 9, 3]
            commits = store.commits(run_id)
            assert commits[0]["kind"] == "FA"
            assert commits[1]["component"] is None

    def test_series_and_latest(self):
        with RunStore() as store:
            store.add_run("a", "dyposub", seconds=1.0)
            store.add_run("a", "dyposub", seconds=2.0)
            store.add_run("b", "static", optimization="dc2", seconds=3.0)
            assert store.series() == [("a", "none", "dyposub"),
                                      ("b", "dc2", "static")]
            assert store.latest("a", "none", "dyposub")["seconds"] == 2.0

    def test_history_orders_and_filters(self):
        with RunStore() as store:
            store.add_run("a", "dyposub", seconds=1.0,
                          phases={"rewrite": 0.5})
            store.add_run("a", "dyposub", seconds=2.0,
                          phases={"rewrite": 0.7},
                          metrics={"normalized:rewrite": 3.0})
            history = store.history("a", "none", "dyposub", "seconds")
            assert [value for _, value in history] == [1.0, 2.0]
            phase = store.history("a", "none", "dyposub", "phase:rewrite")
            assert [value for _, value in phase] == [0.5, 0.7]
            metric = store.history("a", "none", "dyposub",
                                   "metric:normalized:rewrite")
            assert [value for _, value in metric] == [3.0]

    def test_metric_names_skip_counters(self):
        with RunStore() as store:
            store.add_run("a", "dyposub", seconds=1.0, max_poly_size=9,
                          phases={"rewrite": 0.5},
                          metrics={"normalized:rewrite": 3.0,
                                   "counter:rewrite.commits": 12})
            names = store.metric_names("a", "none", "dyposub")
            assert names == ["seconds", "max_poly_size", "phase:rewrite",
                             "metric:normalized:rewrite"]


class TestIngestEvents:
    def test_single_trace(self):
        with RunStore() as store:
            run_id = store.ingest_events(_events(), design="m8")
            run = store.run(run_id)
            assert run["method"] == "dyposub"
            assert run["status"] == "correct"
            assert run["steps"] == 3
            assert run["max_poly_size"] == 9
            assert run["backtracks"] == 1
            assert store.sizes(run_id) == [4, 9, 3]
            assert run["phases"] == {"rewrite": 0.8}

    def test_single_event_stream(self):
        # a trace that died right after run_begin must still ingest
        with RunStore() as store:
            run_id = store.ingest_events(
                [{"ev": "run_begin", "t": 0.0, "method": "static",
                  "nodes": 4}], design="crashed")
            run = store.run(run_id)
            assert run["method"] == "static"
            assert run["status"] is None
            assert run["steps"] is None
            assert store.sizes(run_id) == []

    def test_trace_file_tolerates_truncation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(event) for event in _events()]
        lines.append('{"ev": "step", "i": 4, "si')  # killed mid-write
        path.write_text("\n".join(lines), encoding="utf-8")
        with RunStore() as store:
            run_id, skipped = store.ingest_trace_file(path)
            assert skipped == 1
            assert store.run(run_id)["design"] == "trace"

    def test_real_run_ingests(self, tmp_path):
        aig = generate_multiplier("SP-AR-RC", 4)
        recorder = Recorder()
        result = verify_multiplier(aig, record_trace=True,
                                   recorder=recorder)
        with RunStore() as store:
            run_id = store.ingest_events(recorder.events, design="sp-ar-rc")
            run = store.run(run_id)
            assert run["status"] == "correct"
            assert run["steps"] == result.stats["steps"]
            assert store.sizes(run_id) == result.sizes()


class TestIngestPayloads:
    def test_verify_payload(self):
        payload = {"command": "verify", "records": [{
            "input": "designs/m8.aag", "method": "dyposub",
            "status": "correct", "seconds": 1.25,
            "stats": {"steps": 2, "max_poly_size": 7, "backtracks": 0,
                      "threshold_doublings": 0, "nodes": 10},
            "sizes": [5, 7], "phases": {"rewrite": 0.9},
            "counters": {"rewrite.commits": 2},
        }]}
        with RunStore() as store:
            run_ids = store.ingest_verify_payload(payload)
            assert len(run_ids) == 1
            run = store.run(run_ids[0])
            assert run["design"] == "m8"
            assert run["max_poly_size"] == 7
            assert store.sizes(run_ids[0]) == [5, 7]
            assert run["metrics"] == {"counter:rewrite.commits": 2}

    def test_bench_payload(self):
        payload = {"bench": "table1", "cases": [{
            "architecture": "SP-DT-LF", "size": "8x8",
            "optimization": "dc2",
            "methods": {
                "dyposub": {"method": "dyposub", "status": "correct",
                            "seconds": 1.0, "stats": {"steps": 3}},
                "revsca-static": None,
            },
        }]}
        with RunStore() as store:
            run_ids = store.ingest_bench_payload(payload)
            assert len(run_ids) == 1
            run = store.run(run_ids[0])
            assert run["design"] == "SP-DT-LF 8x8"
            assert run["optimization"] == "dc2"

    def test_perf_bench_payload(self):
        payload = {"bench": "rewriting-microbench",
                   "calibration_seconds": 0.05,
                   "scales": {"small": {"budget": 50_000, "phases": {
                       "spec_build": {"seconds": 0.01, "normalized": 0.2},
                       "dynamic_rewrite": {"seconds": 2.0,
                                           "normalized": 40.0},
                   }}}}
        with RunStore() as store:
            run_ids = store.ingest_perf_bench(payload)
            run = store.run(run_ids[0])
            assert run["design"] == "microbench-small"
            assert run["method"] == "perf_bench"
            assert run["phases"] == {"spec_build": 0.01,
                                     "dynamic_rewrite": 2.0}
            assert run["metrics"] == {"normalized:spec_build": 0.2,
                                      "normalized:dynamic_rewrite": 40.0}

    def test_ingest_file_sniffs_shapes(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text("\n".join(json.dumps(e) for e in _events()),
                         encoding="utf-8")
        verify = tmp_path / "verify.json"
        verify.write_text(json.dumps({"command": "verify", "records": []}),
                          encoding="utf-8")
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"bench": "table2", "cases": []}),
                         encoding="utf-8")
        with RunStore() as store:
            assert len(store.ingest_file(trace)) == 1
            assert store.ingest_file(verify) == []
            assert store.ingest_file(bench) == []
            bogus = tmp_path / "bogus.json"
            bogus.write_text('{"what": "ever"}', encoding="utf-8")
            with pytest.raises(ValueError):
                store.ingest_file(bogus)


class TestSchemaV2:
    def test_workers_and_resources_round_trip(self):
        with RunStore() as store:
            run_id = store.add_run(
                "d", "dyposub", seconds=1.0, status="correct",
                workers=[{"worker_id": 1, "pid": 42, "events": 10,
                          "first_t": 0.0, "last_t": 0.9},
                         {"worker_id": 2, "pid": 43, "events": 12,
                          "first_t": 0.1, "last_t": 1.0}],
                resources={"rewrite": {"rss_peak_kb": 50000,
                                       "tracemalloc_kb": 100.0,
                                       "tracemalloc_peak_kb": 200.0,
                                       "gc_collections": 3}})
            workers = store.workers(run_id)
            assert [w["worker_id"] for w in workers] == [1, 2]
            assert workers[0]["pid"] == 42
            assert workers[1]["events"] == 12
            resources = store.resources(run_id)
            assert resources["rewrite"]["rss_peak_kb"] == 50000
            assert resources["rewrite"]["gc_collections"] == 3
            # run() carries both child tables
            record = store.run(run_id)
            assert len(record["workers"]) == 2
            assert "rewrite" in record["resources"]

    def test_v1_file_upgrades_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        # rewind the file to schema v1: drop the v2 tables and stamp
        conn = sqlite3.connect(path)
        conn.executescript("DROP TABLE workers; DROP TABLE resources;")
        conn.execute("UPDATE meta SET value = '1' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            assert len(store) == 1  # v1 data survives the upgrade
            run_id = store.add_run("d2", "dyposub",
                                   workers=[{"worker_id": 1, "pid": 9,
                                             "events": 1}])
            assert store.workers(run_id)[0]["pid"] == 9
        conn = sqlite3.connect(path)
        stamped = conn.execute("SELECT value FROM meta WHERE key = "
                               "'schema_version'").fetchone()[0]
        conn.close()
        assert stamped == str(SCHEMA_VERSION)

    def test_newer_schema_is_refused_not_corrupted(self, tmp_path):
        import sqlite3

        path = tmp_path / "future.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="newer than this build"):
            RunStore(path)
        # the refused file is untouched and still opens as v99
        conn = sqlite3.connect(path)
        assert conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0] == 1
        conn.close()


class TestSchemaV3:
    def test_attribution_round_trip(self):
        cells = [{"stage": "fsa", "rule": "FA/compact", "seconds": 0.4,
                  "growth": 120, "commits": 7, "samples": 3},
                 {"stage": "ppg", "rule": "HA/compact", "seconds": 0.1,
                  "growth": 0, "commits": 12, "samples": 0}]
        with RunStore() as store:
            run_id = store.add_run("d", "dyposub", status="correct",
                                   attribution=cells)
            stored = store.attribution(run_id)
            assert [(c["stage"], c["rule"]) for c in stored] == \
                [("fsa", "FA/compact"), ("ppg", "HA/compact")]
            assert stored[0]["growth"] == 120
            assert stored[0]["samples"] == 3
            # run() carries the cells too
            assert store.run(run_id)["attribution"] == stored

    def test_v2_file_upgrades_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        # rewind the file to schema v2: drop the v3 table and stamp
        conn = sqlite3.connect(path)
        conn.executescript("DROP TABLE attribution;")
        conn.execute("UPDATE meta SET value = '2' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            assert len(store) == 1  # v2 data survives the upgrade
            run_id = store.add_run(
                "d2", "dyposub",
                attribution=[{"stage": "fsa", "rule": "FA/compact",
                              "seconds": 0.2, "growth": 5, "commits": 2,
                              "samples": 0}])
            assert store.attribution(run_id)[0]["stage"] == "fsa"
        conn = sqlite3.connect(path)
        stamped = conn.execute("SELECT value FROM meta WHERE key = "
                               "'schema_version'").fetchone()[0]
        conn.close()
        assert stamped == str(SCHEMA_VERSION)
        # the upgrade is idempotent: reopening changes nothing
        with RunStore(path) as store:
            assert len(store) == 2

    def test_v5_file_is_refused(self, tmp_path):
        import sqlite3

        path = tmp_path / "future.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '5' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="newer than this build"):
            RunStore(path)

    def test_trace_ingest_stores_attribution_cells_and_metrics(self):
        events = [
            {"ev": "run_begin", "t": 0.0, "method": "dyposub",
             "nodes": 10, "width_a": 4, "width_b": 4, "signed": False},
            {"ev": "stage_map", "t": 0.01, "architecture": "ripple",
             "risk_factor": 1.2, "risk_score": 55.0,
             "regions": {"ppg": 4, "ppa": 3, "fsa": 3},
             "components": {"0": "fsa", "1": "ppg"}},
            {"ev": "rewrite_begin", "t": 0.1, "size": 10,
             "components": 2, "ring": "exact"},
            {"ev": "attempt", "t": 0.15, "comp": 0, "kind": "FA",
             "before": 10, "size": 14, "compact": False, "growth": 0.4},
            {"ev": "step", "t": 0.2, "i": 1, "comp": 0, "kind": "FA",
             "size": 14, "threshold": 0.5},
            {"ev": "attempt", "t": 0.25, "comp": 1, "kind": "HA",
             "before": 14, "size": 8, "compact": True, "growth": -0.4},
            {"ev": "step", "t": 0.3, "i": 2, "comp": 1, "kind": "HA",
             "size": 8, "threshold": 0.5},
            {"ev": "span", "t": 0.1, "name": "rewrite",
             "path": "rewrite", "dur": 0.25},
            {"ev": "run_end", "t": 0.4, "status": "correct",
             "seconds": 0.4},
        ]
        with RunStore() as store:
            run_id = store.ingest_events(events, design="d")
            cells = store.attribution(run_id)
            assert {(c["stage"], c["rule"]) for c in cells} == \
                {("fsa", "FA/expand"), ("ppg", "HA/compact")}
            record = store.run(run_id)
            metrics = record["metrics"]
            assert metrics["attr:stage:fsa:growth"] == 4
            assert metrics["attr:stage:ppg:growth"] == 0
            assert metrics["attr:risk:score"] == 55.0
            assert metrics["attr:sp0:size"] == 10
            assert record["meta"]["architecture"] == "ripple"
            history = store.history(
                "d", "none", "dyposub", "metric:attr:stage:fsa:seconds")
            assert len(history) == 1


class TestSchemaV4:
    RECORD = {"status": "correct", "method": "dyposub", "seconds": 1.5,
              "summary": "dyposub: correct in 1.50s",
              "stats": {"ring": "exact", "width_a": 4, "width_b": 4,
                        "signed": False, "nodes": 104}}

    def test_certificate_round_trip(self):
        with RunStore() as store:
            assert store.put_certificate("f" * 64, self.RECORD,
                                         design="m.aag", run_id=7)
            entry = store.get_certificate("f" * 64)
            assert entry["record"] == self.RECORD
            assert entry["design"] == "m.aag"
            assert entry["run_id"] == 7
            assert entry["status"] == "correct"
            assert entry["width_a"] == 4 and entry["signed"] == 0

    def test_hits_are_counted(self):
        with RunStore() as store:
            store.put_certificate("f" * 64, self.RECORD)
            # a counted get returns the post-bump tally
            assert store.get_certificate("f" * 64)["hits"] == 1
            assert store.get_certificate("f" * 64)["hits"] == 2
            peek = store.get_certificate("f" * 64, count_hit=False)
            assert peek["hits"] == 2
            assert store.get_certificate("f" * 64)["hits"] == 3

    def test_first_writer_wins(self):
        with RunStore() as store:
            assert store.put_certificate("f" * 64, self.RECORD)
            other = dict(self.RECORD, status="buggy")
            assert not store.put_certificate("f" * 64, other)
            assert store.get_certificate("f" * 64)["status"] == "correct"

    def test_listing_filters_by_status(self):
        with RunStore() as store:
            store.put_certificate("a" * 64, self.RECORD)
            store.put_certificate("b" * 64,
                                  dict(self.RECORD, status="buggy"))
            assert len(store.certificates()) == 2
            buggy = store.certificates(status="buggy")
            assert [c["fingerprint"] for c in buggy] == ["b" * 64]
            assert "record" not in buggy[0]  # listing skips payloads

    def test_certificates_survive_run_pruning(self):
        with RunStore() as store:
            store.add_run("d", "dyposub", seconds=1.0)
            store.put_certificate("f" * 64, self.RECORD)
            store.prune(keep_last=0, vacuum=False)
            assert len(store) == 0
            assert store.get_certificate("f" * 64) is not None

    def test_v3_file_upgrades_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.db"
        with RunStore(path) as store:
            store.add_run("d", "dyposub", seconds=1.0)
        # rewind the file to schema v3: drop the v4 table and stamp
        conn = sqlite3.connect(path)
        conn.executescript("DROP TABLE certificates;")
        conn.execute("UPDATE meta SET value = '3' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            assert len(store) == 1  # v3 data survives the upgrade
            store.put_certificate("f" * 64, self.RECORD)
            assert store.get_certificate("f" * 64) is not None
        conn = sqlite3.connect(path)
        stamped = conn.execute("SELECT value FROM meta WHERE key = "
                               "'schema_version'").fetchone()[0]
        conn.close()
        assert stamped == str(SCHEMA_VERSION)


class TestConcurrentWriters:
    def test_file_store_runs_in_wal_mode(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            mode = store._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() == "wal"
            timeout = store._conn.execute(
                "PRAGMA busy_timeout").fetchone()[0]
            assert timeout >= 1000  # milliseconds

    def test_memory_store_skips_wal(self):
        with RunStore() as store:
            mode = store._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() == "memory"

    def test_two_writers_interleave_without_losses(self, tmp_path):
        """The service scenario: several worker processes (modelled as
        threads with *separate connections* — SQLite locking is
        per-connection) write runs and certificates into one store
        concurrently.  WAL + busy_timeout must absorb the contention
        without `database is locked` errors or lost rows."""
        import threading

        path = tmp_path / "runs.db"
        rounds = 25
        errors = []

        def writer(slot):
            try:
                with RunStore(path, busy_timeout=30.0) as store:
                    for index in range(rounds):
                        store.add_run(f"w{slot}", "dyposub",
                                      seconds=0.1 * index)
                        store.put_certificate(
                            f"{slot}:{index}",
                            {"status": "correct", "seconds": 0.1},
                            design=f"w{slot}")
                        # both race on the same shared fingerprint
                        store.put_certificate(
                            "shared", {"status": "correct"})
                        store.get_certificate("shared")
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        with RunStore(path) as store:
            assert len(store) == 2 * rounds
            assert len(store.certificates()) == 2 * rounds + 1
            shared = store.get_certificate("shared", count_hit=False)
            assert shared["hits"] == 2 * rounds  # every replay counted


class TestPrune:
    def _seed(self, store):
        for index in range(4):
            store.add_run("a", "dyposub", seconds=1.0 + index,
                          created_at=100.0 + index,
                          phases={"rewrite": 0.5},
                          workers=[{"worker_id": 1, "pid": 1,
                                    "events": index}])
        store.add_run("b", "dyposub", seconds=9.0, created_at=50.0,
                      resources={"rewrite": {"rss_peak_kb": 1}})

    def test_keep_last_is_per_series(self):
        with RunStore() as store:
            self._seed(store)
            result = store.prune(keep_last=2, vacuum=False)
            assert result["deleted"] == 2  # only series "a" had extras
            assert result["remaining"] == 3
            # newest two of "a" survive, "b"'s single run survives
            assert [r["seconds"] for r in store.runs(design="a")] == \
                [3.0, 4.0]
            assert len(store.runs(design="b")) == 1

    def test_before_cutoff_composes_with_keep_last(self):
        with RunStore() as store:
            self._seed(store)
            result = store.prune(keep_last=3, before=101.5)
            # keep_last=3 dooms a's oldest; before=101.5 dooms a's first
            # two and b's run — the union is 3 deletions
            assert result["deleted"] == 3
            assert result["remaining"] == 2
            assert store.runs(design="b") == []

    def test_children_cascade_and_counts_report(self):
        with RunStore() as store:
            self._seed(store)
            before = store.table_counts()
            assert before["workers"] == 4
            assert before["resources"] == 1
            result = store.prune(keep_last=1)
            tables = result["tables"]
            assert tables["runs"] == 2
            assert tables["workers"] == 1  # cascaded with their runs
            assert tables["phases"] == 1
            assert tables["resources"] == 1

    def test_prune_on_disk_store_vacuums(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            self._seed(store)
            result = store.prune(keep_last=1, vacuum=True)
            assert result["remaining"] == 2

    def test_noop_prune(self):
        with RunStore() as store:
            self._seed(store)
            result = store.prune(keep_last=10, vacuum=False)
            assert result["deleted"] == 0
            assert result["remaining"] == 5


class TestGitRev:
    def test_current_git_rev_in_repo(self):
        rev = current_git_rev()
        # the repo under test is a git checkout; outside one this
        # degrades to None rather than raising
        assert rev is None or (isinstance(rev, str) and rev)

    def test_current_git_rev_outside_repo(self, tmp_path):
        assert current_git_rev(cwd=tmp_path) is None
