"""Tests for repro.obs.live: heartbeat, status line and stall watchdog."""

import io

from repro.core import verify_multiplier
from repro.genmul import generate_multiplier
from repro.obs import LiveMonitor, Recorder


class FakeClock:
    """Injectable monotonic clock so stalls need no sleeping."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _monitor(stall_budget=5.0, stream=None):
    clock = FakeClock()
    monitor = LiveMonitor(Recorder(), stall_budget=stall_budget,
                          stream=stream, clock=clock)
    return monitor, clock


class TestTee:
    def test_events_reach_the_inner_recorder(self):
        monitor, _ = _monitor()
        monitor.event("step", i=1, comp=0, kind="FA", size=4)
        monitor.count("rewrite.commits")
        monitor.observe("rewrite.sp_size", 4)
        assert monitor.events[-1]["ev"] == "step"
        assert monitor.inner.counters == {"rewrite.commits": 1}
        assert monitor.summary()["counters"] == {"rewrite.commits": 1}

    def test_spans_track_the_phase_stack(self):
        monitor, _ = _monitor()
        with monitor.span("rewrite"):
            assert monitor._phases == ["rewrite"]
        assert monitor._phases == []
        assert monitor.events[-1]["ev"] == "span"

    def test_progress_mirrors_engine_state(self):
        monitor, _ = _monitor()
        monitor.event("progress", step=3, size=17, candidates=4,
                      remaining=7, backtracks=1)
        assert monitor.step == 3
        assert monitor.size == 17
        assert monitor.candidates == 4
        assert monitor.total == 10
        assert monitor.backtracks == 1


class TestWatchdog:
    def test_no_stall_within_budget(self):
        monitor, clock = _monitor(stall_budget=5.0)
        monitor.event("progress", step=1, size=4, candidates=1,
                      remaining=1, backtracks=0)
        clock.advance(4.9)
        monitor.pulse()
        assert monitor.stalls == []

    def test_stall_flagged_as_rp011(self):
        monitor, clock = _monitor(stall_budget=5.0)
        monitor.event("progress", step=2, size=9, candidates=3,
                      remaining=5, backtracks=0)
        clock.advance(6.0)
        monitor.pulse()
        assert len(monitor.stalls) == 1
        diag = monitor.stalls[0]
        assert diag.code == "RP011"
        assert diag.severity == "warning"
        assert diag.context["step"] == 2
        assert diag.context["seconds_since_commit"] >= 5.0
        # the stall also lands in the trace for post-mortem replay
        stall_events = [e for e in monitor.events if e["ev"] == "stall"]
        assert len(stall_events) == 1
        assert stall_events[0]["step"] == 2

    def test_one_diagnostic_per_silent_gap(self):
        monitor, clock = _monitor(stall_budget=5.0)
        clock.advance(6.0)
        monitor.pulse()
        clock.advance(6.0)
        monitor.pulse()  # same gap, no re-flag
        assert len(monitor.stalls) == 1
        # a commit re-arms the watchdog; the next gap is a new stall
        monitor.event("progress", step=1, size=3, candidates=1,
                      remaining=1, backtracks=0)
        clock.advance(6.0)
        monitor.pulse()
        assert len(monitor.stalls) == 2

    def test_stall_writes_a_warning_line(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = LiveMonitor(Recorder(), stall_budget=1.0, stream=stream,
                              clock=clock)
        clock.advance(2.0)
        monitor.pulse()
        assert "RP011" in stream.getvalue()

    def test_artificially_stalled_commit_within_budget(self):
        """Acceptance: a commit gap longer than the budget is flagged
        on the very next heartbeat after the budget expires."""
        monitor, clock = _monitor(stall_budget=10.0)
        monitor.event("progress", step=5, size=100, candidates=2,
                      remaining=3, backtracks=0)
        for _ in range(9):  # nine in-budget pulses: silence is fine
            clock.advance(1.0)
            monitor.pulse()
        assert monitor.stalls == []
        clock.advance(1.5)  # 10.5s since the last commit
        monitor.pulse()
        assert len(monitor.stalls) == 1
        assert monitor.stalls[0].context["step"] == 5


class TestAnomalyDetection:
    def _monitor(self, detector, stream=None):
        clock = FakeClock()
        monitor = LiveMonitor(Recorder(), stream=stream, clock=clock,
                              detector=detector)
        return monitor, clock

    def test_outlier_commit_fires_rp012(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        monitor, _ = self._monitor(detector)
        monitor.event("rewrite_begin", size=10, components=5, ring="exact")
        for i, size in enumerate((10, 11, 12), start=1):
            monitor.event("step", i=i, comp=i, kind="FA", size=size)
        monitor.event("step", i=4, comp=4, kind="FA", size=400)
        assert [d.code for d in monitor.anomalies] == ["RP012"]
        anomaly_events = [e for e in monitor.events
                          if e["ev"] == "anomaly"]
        assert len(anomaly_events) == 1
        assert anomaly_events[0]["step"] == 4
        assert anomaly_events[0]["size"] == 400
        assert anomaly_events[0]["ratio"] > 2.0

    def test_steady_run_is_quiet(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        monitor, _ = self._monitor(detector)
        monitor.event("rewrite_begin", size=10, components=9, ring="exact")
        for i in range(1, 10):
            monitor.event("step", i=i, comp=i, kind="FA", size=10 + i)
        assert monitor.anomalies == []

    def test_noise_floor_shields_small_polynomials(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        # a 4 -> 40 monomial jump is a 10x ratio but far below the floor
        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=64, min_history=3))
        monitor, _ = self._monitor(detector)
        monitor.event("rewrite_begin", size=4, components=4, ring="exact")
        for i, size in enumerate((4, 4, 4, 40), start=1):
            monitor.event("step", i=i, comp=i, kind="FA", size=size)
        assert monitor.anomalies == []

    def test_store_baseline_fires_rp013_once(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=100.0, floor=1, min_history=1,
                          baseline_margin=0.25),
            baseline={"peak": 100.0, "runs": 3}, design="m8")
        monitor, _ = self._monitor(detector)
        monitor.event("rewrite_begin", size=50, components=3, ring="exact")
        monitor.event("step", i=1, comp=1, kind="FA", size=90)
        assert monitor.anomalies == []  # under the margin
        monitor.event("step", i=2, comp=2, kind="FA", size=140)
        monitor.event("step", i=3, comp=3, kind="FA", size=150)
        codes = [d.code for d in monitor.anomalies]
        assert codes == ["RP013"]  # fired once, not per commit

    def test_rewrite_begin_resets_the_run_local_ewma(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        monitor, _ = self._monitor(detector)
        monitor.event("rewrite_begin", size=10, components=3, ring="exact")
        for i, size in enumerate((10, 10, 10), start=1):
            monitor.event("step", i=i, comp=i, kind="FA", size=size)
        # escalation re-run: sizes jump but the detector starts fresh
        monitor.event("rewrite_begin", size=100, components=3,
                      ring="exact")
        monitor.event("step", i=1, comp=1, kind="FA", size=100)
        assert monitor.anomalies == []

    def test_anomaly_writes_a_warning_line(self):
        from repro.obs.attribution import (AnomalyConfig,
                                           CommitAnomalyDetector)

        detector = CommitAnomalyDetector(
            AnomalyConfig(tolerance=2.0, floor=1, min_history=3))
        stream = io.StringIO()
        monitor, _ = self._monitor(detector, stream=stream)
        monitor.event("rewrite_begin", size=10, components=4, ring="exact")
        for i, size in enumerate((10, 10, 10, 300), start=1):
            monitor.event("step", i=i, comp=i, kind="FA", size=size)
        assert "RP012" in stream.getvalue()


class TestRendering:
    def test_status_line_renders_and_clears(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = LiveMonitor(Recorder(), stall_budget=100.0,
                              stream=stream, refresh=0.0, clock=clock,
                              interactive=True)
        clock.advance(1.0)
        with monitor.span("rewrite"):
            monitor.event("progress", step=2, size=9, candidates=3,
                          remaining=4, backtracks=1)
        text = stream.getvalue()
        assert "[live] rewrite" in text
        assert "step 2/6" in text
        assert "SP_i 9" in text
        monitor.finish()
        assert stream.getvalue().endswith("\r")

    def test_non_tty_stream_falls_back_to_plain_lines(self):
        # io.StringIO().isatty() is False: auto-detection must choose
        # the plain line-per-update mode with no \r control characters
        stream = io.StringIO()
        clock = FakeClock()
        monitor = LiveMonitor(Recorder(), stall_budget=100.0,
                              stream=stream, refresh=0.0, clock=clock)
        assert monitor.interactive is False
        clock.advance(3.0)
        with monitor.span("rewrite"):
            monitor.event("progress", step=2, size=9, candidates=3,
                          remaining=4, backtracks=1)
        monitor.finish()
        text = stream.getvalue()
        assert "\r" not in text
        assert "step 2/6" in text
        assert text.endswith("\n")

    def test_no_color_forces_plain_mode(self, monkeypatch):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        monkeypatch.setenv("NO_COLOR", "1")
        monitor = LiveMonitor(Recorder(), stream=FakeTty())
        assert monitor.interactive is False
        monkeypatch.delenv("NO_COLOR")
        monkeypatch.setenv("TERM", "dumb")
        monitor = LiveMonitor(Recorder(), stream=FakeTty())
        assert monitor.interactive is False
        monkeypatch.setenv("TERM", "xterm-256color")
        monitor = LiveMonitor(Recorder(), stream=FakeTty())
        assert monitor.interactive is True

    def test_run_end_finishes_the_line(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = LiveMonitor(Recorder(), stream=stream, refresh=0.0,
                              clock=clock)
        clock.advance(1.0)
        monitor.event("progress", step=1, size=3, candidates=1,
                      remaining=0, backtracks=0)
        monitor.event("run_end", status="correct", seconds=1.0)
        assert monitor.events[-1]["ev"] == "run_end"


class TestWorkerHeartbeats:
    def test_only_the_silent_worker_stalls(self):
        monitor, clock = _monitor(stall_budget=5.0)
        monitor.worker_event({"ev": "task_begin", "worker_id": 1,
                              "design": "a.aag"})
        clock.advance(3.0)
        monitor.worker_event({"ev": "task_begin", "worker_id": 2,
                              "design": "b.aag"})
        clock.advance(3.0)  # worker 1 silent for 6s, worker 2 for 3s
        monitor.tick()
        assert len(monitor.stalls) == 1
        diag = monitor.stalls[0]
        assert diag.code == "RP011"
        assert diag.context["worker_id"] == 1
        assert "a.aag" in diag.message
        stall_events = [e for e in monitor.events if e["ev"] == "stall"]
        assert stall_events[0]["worker_id"] == 1

    def test_progress_re_arms_the_worker_watchdog(self):
        monitor, clock = _monitor(stall_budget=5.0)
        monitor.worker_event({"ev": "task_begin", "worker_id": 1,
                              "design": "a.aag"})
        clock.advance(6.0)
        monitor.tick()
        monitor.tick()  # same silent gap: no re-flag
        assert len(monitor.stalls) == 1
        monitor.worker_event({"ev": "step", "worker_id": 1, "i": 4,
                              "size": 9})
        clock.advance(6.0)
        monitor.tick()
        assert len(monitor.stalls) == 2

    def test_finished_workers_may_be_silent(self):
        monitor, clock = _monitor(stall_budget=5.0)
        monitor.worker_event({"ev": "task_begin", "worker_id": 1,
                              "design": "a.aag"})
        monitor.worker_event({"ev": "run_end", "worker_id": 1,
                              "status": "correct"})
        monitor.worker_event({"ev": "task_end", "worker_id": 1,
                              "status": "correct"})
        clock.advance(60.0)
        monitor.tick()
        assert monitor.stalls == []


class TestPipelineIntegration:
    def test_monitor_threads_through_a_real_run(self):
        """The monitor satisfies the recorder interface end to end and
        sees the engine's progress heartbeat."""
        aig = generate_multiplier("SP-AR-RC", 4)
        monitor = LiveMonitor(Recorder(), stall_budget=1000.0)
        result = verify_multiplier(aig, record_trace=True,
                                   recorder=monitor)
        assert result.status == "correct"
        assert monitor.step == result.stats["steps"]
        progress = [e for e in monitor.events if e["ev"] == "progress"]
        assert len(progress) == result.stats["steps"]
        assert monitor.stalls == []
        # the vanishing reducer's pulse hook fired during rewriting
        assert monitor.pulses >= 0

    def test_parity_under_live_monitor(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        plain = verify_multiplier(aig, record_trace=True)
        monitored = verify_multiplier(aig, record_trace=True,
                                      recorder=LiveMonitor(Recorder()))
        assert plain.status == monitored.status
        assert plain.stats == monitored.stats
        assert plain.trace == monitored.trace
