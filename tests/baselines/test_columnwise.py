"""Tests for the incremental column-wise baseline ([8]/[16])."""

import pytest

from repro.baselines.columnwise import (
    column_product_polynomial,
    verify_column_wise,
)
from repro.genmul import generate_multiplier, inject_visible_fault
from repro.poly import Polynomial


class TestColumnProducts:
    def test_column_terms(self, mult_4x4_array):
        aig = mult_4x4_array
        # column 0: a0*b0 only
        poly = column_product_polynomial(aig, 4, 0)
        assert len(poly) == 1
        # column 3 of a 4x4: 4 terms
        poly = column_product_polynomial(aig, 4, 3)
        assert len(poly) == 4
        # column 7 (top): a3*b3... wait wait: j+k=7 with j,k<4 -> only (3,4)?
        poly = column_product_polynomial(aig, 4, 6)
        assert len(poly) == 1

    def test_columns_sum_to_full_product(self, mult_4x4_array):
        aig = mult_4x4_array
        total = Polynomial.zero()
        for column in range(8):
            total = total + (column_product_polynomial(aig, 4, column)
                             * (1 << column))
        from repro.core.spec import operand_word_polynomial

        a_word = operand_word_polynomial(aig.inputs[:4])
        b_word = operand_word_polynomial(aig.inputs[4:])
        assert total == a_word * b_word


class TestVerification:
    @pytest.mark.parametrize("arch", ["SP-AR-RC", "SP-WT-RC", "SP-DT-KS"])
    def test_verifies_small_multipliers(self, arch):
        aig = generate_multiplier(arch, 4)
        result = verify_column_wise(aig, monomial_budget=500_000,
                                    time_budget=60)
        assert result.ok, (arch, result.status)
        assert result.stats["carry_sizes"]
        # the final carry must vanish, so the last recorded size is 0
        assert result.stats["carry_sizes"][-1] == 0

    def test_rejects_buggy(self, mult_4x4_array):
        buggy = inject_visible_fault(mult_4x4_array, seed=29)
        result = verify_column_wise(buggy, monomial_budget=500_000,
                                    time_budget=60)
        assert result.status in ("buggy", "timeout")

    def test_carry_sizes_grow_with_column(self):
        """The method's signature weakness: the carry polynomials of the
        middle/high columns are the big ones (this is what times the
        family out on larger designs)."""
        aig = generate_multiplier("SP-AR-RC", 4)
        result = verify_column_wise(aig, monomial_budget=500_000,
                                    time_budget=120)
        assert result.ok
        sizes = result.stats["carry_sizes"]
        assert max(sizes) >= 30
        assert max(sizes) > sizes[0]
        assert sizes[-1] == 0

    def test_budget_trips_on_nontrivial(self, mult_8x8_dadda):
        """Table I: this family times out on non-trivial multipliers."""
        result = verify_column_wise(mult_8x8_dadda, monomial_budget=20_000,
                                    time_budget=30)
        assert result.timed_out
        assert "failed_column" in result.stats or \
            result.stats.get("budget_kind") == "time"

    def test_time_budget(self, mult_8x8_dadda):
        result = verify_column_wise(mult_8x8_dadda, time_budget=1e-9)
        assert result.timed_out
