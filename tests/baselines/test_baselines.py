"""Tests for the prior-art baseline verifiers."""

import pytest

from repro.baselines import (
    BASELINES,
    verify_naive_static,
    verify_polycleaner_static,
    verify_revsca_static,
)
from repro.core import verify_multiplier
from repro.genmul import generate_multiplier, inject_visible_fault


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_verifies_simple_array(self, name):
        aig = generate_multiplier("SP-AR-RC", 4)
        result = BASELINES[name](aig)
        assert result.ok, (name, result.status)

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_rejects_buggy(self, name, mult_4x4_array):
        buggy = inject_visible_fault(mult_4x4_array, seed=17)
        result = BASELINES[name](buggy, monomial_budget=500_000)
        assert result.status in ("buggy", "timeout")
        if name == "revsca-static":
            assert result.status == "buggy"

    def test_methods_report_their_name(self, mult_4x4_array):
        assert verify_naive_static(mult_4x4_array).method == "naive-static"
        assert (verify_polycleaner_static(mult_4x4_array).method
                == "polycleaner-static")
        assert verify_revsca_static(mult_4x4_array).method == "revsca-static"


class TestMethodHierarchy:
    """The paper's Table I ordering: reverse engineering (RevSCA-style)
    beats cone-only (PolyCleaner-style) beats node-level ([8]/[11]);
    DyPoSub's dynamic order never peaks above the strongest static
    method."""

    def test_peak_ordering_on_dadda(self, mult_8x8_dadda):
        budget = 400_000
        revsca = verify_revsca_static(mult_8x8_dadda, monomial_budget=budget)
        naive = verify_naive_static(mult_8x8_dadda, monomial_budget=budget)
        dyposub = verify_multiplier(mult_8x8_dadda, monomial_budget=budget)
        assert dyposub.ok
        assert revsca.ok
        assert (dyposub.stats["max_poly_size"]
                <= revsca.stats["max_poly_size"])
        naive_peak = naive.stats["max_poly_size"]
        assert naive_peak >= revsca.stats["max_poly_size"]

    def test_naive_explodes_where_revsca_does_not(self, mult_8x8_dadda):
        """With a tight budget the node-level method must time out on a
        non-trivial multiplier that RevSCA-style still handles —
        the [10]/[13] contribution the paper builds on."""
        budget = 30_000
        naive = verify_naive_static(mult_8x8_dadda, monomial_budget=budget)
        revsca = verify_revsca_static(mult_8x8_dadda, monomial_budget=budget)
        assert naive.timed_out
        assert revsca.ok

    def test_vanishing_removal_matters(self, mult_8x8_dadda):
        """PolyCleaner-style (with vanishing rules) must peak below a
        vanishing-free run of the same cone partition."""
        with_rules = verify_polycleaner_static(mult_8x8_dadda,
                                               monomial_budget=1_000_000)
        assert with_rules.stats["vanishing_removed"] >= 0


class TestBudgets:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_budget_reports_timeout(self, name, mult_8x8_dadda):
        result = BASELINES[name](mult_8x8_dadda, monomial_budget=50)
        assert result.timed_out
        assert result.stats["max_poly_size"] > 0

    def test_trace_recording(self, mult_4x4_array):
        result = verify_revsca_static(mult_4x4_array, record_trace=True)
        assert result.trace
        assert max(result.sizes()) <= result.stats["max_poly_size"]
