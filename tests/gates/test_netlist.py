"""Tests for the gate-level netlist substrate and technology mapping."""

import pytest

from repro.aig.simulate import functionally_equal, random_patterns, simulate
from repro.errors import NetlistError
from repro.gates import CELLS, Netlist, cell_name_for, cell_truth_table
from repro.opt import techmap, techmap_roundtrip


class TestLibrary:
    def test_known_cells_resolve(self):
        assert cell_name_for(0b1000, 2) == "AND2"
        assert cell_name_for(0b0110, 2) == "XOR2"
        assert cell_name_for(0b11101000, 3) == "MAJ3"

    def test_unknown_becomes_lut(self):
        name = cell_name_for(0b0010, 3)
        assert name.startswith("LUT3_")
        n, tt = cell_truth_table(name)
        assert (n, tt) == (3, 0b0010)

    def test_cell_tables_self_consistent(self):
        for name, (n, tt) in CELLS.items():
            assert cell_truth_table(name) == (n, tt)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            cell_truth_table("FOO42")


class TestNetlist:
    @pytest.fixture()
    def ha_netlist(self):
        nl = Netlist("ha")
        a = nl.add_input("a")
        b = nl.add_input("b")
        s = nl.add_cell("XOR2", [a, b])
        c = nl.add_cell("AND2", [a, b])
        nl.add_output(s, name="s")
        nl.add_output(c, name="c")
        return nl

    def test_evaluate(self, ha_netlist):
        assert ha_netlist.evaluate([0b0101, 0b0011], width=4) == [0b0110,
                                                                  0b0001]

    def test_inverted_output(self):
        nl = Netlist()
        a = nl.add_input()
        nl.add_output(a, inverted=True)
        assert nl.evaluate([0b01], width=2) == [0b10]

    def test_arity_checked(self, ha_netlist):
        with pytest.raises(NetlistError):
            ha_netlist.add_cell("AND2", [1])

    def test_undriven_net_rejected(self):
        nl = Netlist()
        nl.add_input()
        nl.add_output(99)
        with pytest.raises(NetlistError):
            nl.evaluate([1])

    def test_to_aig_equivalent(self, ha_netlist):
        aig = ha_netlist.to_aig()
        patterns = [0b0101, 0b0011]
        assert simulate(aig, patterns, 4) == ha_netlist.evaluate(patterns, 4)

    def test_cell_histogram(self, ha_netlist):
        assert ha_netlist.cell_histogram() == {"XOR2": 1, "AND2": 1}

    def test_verilog_export(self, ha_netlist):
        text = ha_netlist.to_verilog()
        assert text.startswith("module ha (")
        assert "XOR2" in text and "AND2" in text
        assert "endmodule" in text

    def test_verilog_sanitizes_module_name(self):
        nl = Netlist("SP-DT-LF 8x8")
        nl.add_input("a")
        nl.add_output(1, name="y")
        header = nl.to_verilog().splitlines()[0]
        assert "-" not in header and " 8x8" not in header


class TestTechmap:
    def test_roundtrip_preserves_function(self, mult_8x8_dadda):
        mapped = techmap_roundtrip(mult_8x8_dadda)
        assert functionally_equal(mult_8x8_dadda, mapped)

    def test_netlist_matches_aig(self, mult_4x4_dadda):
        nl = techmap(mult_4x4_dadda)
        patterns = random_patterns(mult_4x4_dadda.num_inputs, 128, seed=3)
        assert nl.evaluate(patterns, 128) == simulate(mult_4x4_dadda,
                                                      patterns, 128)

    def test_cell_input_bound(self, mult_4x4_dadda):
        nl = techmap(mult_4x4_dadda, k=3)
        for cell in nl.cells:
            assert len(cell.inputs) <= 3

    def test_delay_oriented_flag(self, mult_4x4_dadda):
        area = techmap(mult_4x4_dadda, delay_oriented=False)
        delay = techmap(mult_4x4_dadda, delay_oriented=True)
        patterns = random_patterns(mult_4x4_dadda.num_inputs, 64, seed=1)
        assert area.evaluate(patterns, 64) == delay.evaluate(patterns, 64)

    def test_invalid_k_rejected(self, mult_4x4_dadda):
        with pytest.raises(NetlistError):
            techmap(mult_4x4_dadda, k=7)

    def test_fewer_cells_than_ands(self, mult_8x8_dadda):
        nl = techmap(mult_8x8_dadda)
        assert nl.num_cells < mult_8x8_dadda.num_ands
