"""Process-parallel fan-out: ``--jobs N`` must be a pure speed knob.

The host this suite runs on may have a single core, so these tests do
not assert wall-clock speedups; they assert the property that makes the
knob safe to use anywhere: fanning work out over ``N`` processes yields
exactly the same results, in the same order, as the serial path.
"""

import json
import re

from repro import cli
from repro.aig.aiger import write_aag
from repro.bench.harness import parallel_map
from repro.genmul.multiplier import generate_multiplier


def _square(value):
    return value * value


class TestParallelMap:
    def test_serial_and_pooled_agree(self):
        items = list(range(12))
        serial = parallel_map(_square, items, jobs=1)
        pooled = parallel_map(_square, items, jobs=3)
        assert pooled == serial == [v * v for v in items]

    def test_progress_labels_in_order(self):
        seen = []
        parallel_map(_square, [1, 2, 3], jobs=2,
                     progress=seen.append, labels=["a", "b", "c"])
        assert seen == ["a", "b", "c"]

    def test_single_item_stays_in_process(self):
        # len(items) <= 1 short-circuits the pool entirely
        assert parallel_map(_square, [7], jobs=8) == [49]


def _strip_timings(record):
    clean = dict(record)
    clean.pop("seconds", None)
    clean.pop("phases", None)
    # worker attribution legitimately differs between serial and pooled
    clean.pop("worker_id", None)
    clean.pop("jobs", None)
    clean["summary"] = re.sub(r" in \d+\.\d+s", " in <t>",
                              clean["summary"])
    return clean


class TestBatchVerifyEquivalence:
    def test_jobs_do_not_change_records(self, tmp_path, capsys):
        paths = []
        for arch in ("SP-AR-RC", "SP-DT-LF"):
            path = tmp_path / f"{arch}.aag"
            path.write_text(write_aag(generate_multiplier(arch, 4)),
                            encoding="ascii")
            paths.append(str(path))

        payloads = {}
        for jobs in (1, 2):
            out = tmp_path / f"jobs{jobs}.json"
            code = cli.main(["verify", *paths, "--jobs", str(jobs),
                             "--json", str(out)])
            assert code == 0
            payloads[jobs] = json.loads(out.read_text(encoding="utf-8"))
            capsys.readouterr()

        assert payloads[1]["inputs"] == payloads[2]["inputs"] == paths
        serial = [_strip_timings(r) for r in payloads[1]["records"]]
        pooled = [_strip_timings(r) for r in payloads[2]["records"]]
        assert pooled == serial
        assert [r["status"] for r in serial] == ["correct", "correct"]
