"""Tests for the benchmark harness and renderers."""

import pytest

from repro.bench.harness import (
    METHODS,
    bench_config,
    benchmark_multiplier,
    run_method,
    runtime_cell,
)
from repro.bench.render import render_table, render_trace_plot
from repro.core.result import VerificationResult


class TestConfig:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        config = bench_config()
        assert config["scale"] == "small"
        assert config["sizes"] == (4, 8)

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert bench_config()["sizes"] == (8, 16)

    def test_budget_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BUDGET", "1234")
        monkeypatch.setenv("REPRO_BENCH_TIME", "9.5")
        config = bench_config()
        assert config["budget"] == 1234
        assert config["time"] == 9.5

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_config()


class TestCache:
    def test_benchmark_cached(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        first = benchmark_multiplier("SP-AR-RC", 3, "none")
        assert (tmp_path / "SP-AR-RC_3x3_none.aag").exists()
        second = benchmark_multiplier("SP-AR-RC", 3, "none")
        from repro.aig.ops import structural_signature

        assert structural_signature(first) == structural_signature(second)

    def test_optimized_variant_cached_separately(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        benchmark_multiplier("SP-AR-RC", 3, "resyn3")
        assert (tmp_path / "SP-AR-RC_3x3_resyn3.aag").exists()


class TestMethods:
    def test_method_table_complete(self):
        assert set(METHODS) == {"dyposub", "dyposub-modular",
                                "revsca-static", "polycleaner-static",
                                "naive-static", "columnwise-static"}

    def test_run_method(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        aig = benchmark_multiplier("SP-AR-RC", 3, "none")
        result = run_method("dyposub", aig, budget=10_000, time_budget=30)
        assert result.ok

    def test_runtime_cell_formats(self):
        ok = VerificationResult(status="correct", method="m", seconds=1.234)
        to = VerificationResult(status="timeout", method="m")
        bug = VerificationResult(status="buggy", method="m", seconds=0.5)
        assert runtime_cell(ok) == "1.23"
        assert runtime_cell(to) == "TO"
        assert runtime_cell(bug) == "BUG(0.50)"


class TestRender:
    def test_table_alignment(self):
        text = render_table(["Name", "N"], [["a", 1], ["bb", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[2]
        assert lines[-1].endswith("22")

    def test_trace_plot_contains_series(self):
        text = render_trace_plot({"dynamic": [3, 5, 2],
                                  "static": [3, 100, 4]})
        assert "* = dynamic" in text
        assert "o = static" in text

    def test_trace_plot_handles_zeros(self):
        text = render_trace_plot({"a": [0, 0, 1]})
        assert "steps" in text

    def test_trace_plot_empty(self):
        assert render_trace_plot({"a": []}) == "(no data)"


class TestExperimentModules:
    def test_table1_case_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        from repro.bench.table1 import OPTIMIZATIONS, table1_cases

        cases = table1_cases()
        archs = {arch for arch, _w, _o in cases}
        assert len(archs) == 8
        assert all(opt in OPTIMIZATIONS for _a, _w, opt in cases)
        # Booth architectures run at their own (smaller) sizes
        booth_sizes = {w for a, w, _o in cases if a.startswith("BP")}
        assert booth_sizes == {4}

    def test_table2_case_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        from repro.bench.table2 import table2_cases

        cases = table2_cases()
        assert ("EPFL-like", 6) in cases
        assert ("DesignWare-like", 4) in cases

    def test_fig5_trace_case(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        from repro.bench.fig5 import trace_case

        case = trace_case("none", width=4)
        assert set(case["traces"]) == {"dynamic", "static"}
        assert case["peaks"]["dynamic"] > 0
        assert case["status"]["dynamic"] == "correct"
