"""Shared fixtures and helpers for the test suite."""

import itertools

import pytest

from repro.aig.simulate import outputs_as_int, simulate_words
from repro.genmul import generate_multiplier, multiply_reference


def input_word_literals(aig, width_a):
    """Positive literals of the two operand words of a multiplier AIG."""
    a_lits = [2 * v for v in aig.inputs[:width_a]]
    b_lits = [2 * v for v in aig.inputs[width_a:]]
    return a_lits, b_lits


def check_multiplier_exhaustive(spec, aig=None):
    """Assert a multiplier AIG computes products exactly (exhaustive)."""
    if aig is None:
        aig = generate_multiplier(spec)
    a_lits, b_lits = input_word_literals(aig, spec.width_a)
    for a, b in itertools.product(range(1 << spec.width_a),
                                  range(1 << spec.width_b)):
        bits = simulate_words(aig, [(a, a_lits), (b, b_lits)])
        got = outputs_as_int(bits)
        want = multiply_reference(spec, a, b)
        assert got == want, (spec.name(), a, b, got, want)
    return aig


def check_multiplier_random(spec, aig, samples=40, seed=0):
    """Assert a multiplier on random operand pairs."""
    import random

    rng = random.Random(seed)
    a_lits, b_lits = input_word_literals(aig, spec.width_a)
    for _ in range(samples):
        a = rng.randrange(1 << spec.width_a)
        b = rng.randrange(1 << spec.width_b)
        got = outputs_as_int(simulate_words(aig, [(a, a_lits), (b, b_lits)]))
        assert got == multiply_reference(spec, a, b), (spec.name(), a, b)


@pytest.fixture(scope="session")
def mult_4x4_array():
    """A 4x4 array multiplier (session-cached)."""
    return generate_multiplier("SP-AR-RC", 4)


@pytest.fixture(scope="session")
def mult_4x4_dadda():
    return generate_multiplier("SP-DT-LF", 4)


@pytest.fixture(scope="session")
def mult_8x8_dadda():
    return generate_multiplier("SP-DT-LF", 8)


@pytest.fixture(scope="session")
def mult_4x4_booth():
    return generate_multiplier("BP-AR-RC", 4)
