"""Unit tests for the polynomial algebra."""

import pytest

from repro.errors import PolynomialError
from repro.poly import Polynomial, parse_polynomial, VariablePool
from repro.poly.monomial import (
    CONST_MONOMIAL,
    format_monomial,
    monomial,
    monomial_degree,
    monomial_divide_by_var,
    monomial_key,
    monomial_mul,
)


class TestMonomialHelpers:
    def test_idempotent_construction(self):
        assert monomial(1, 1, 2) == monomial(1, 2)

    def test_product_is_union(self):
        assert monomial_mul(monomial(1, 2), monomial(2, 3)) == monomial(1, 2, 3)

    def test_degree(self):
        assert monomial_degree(CONST_MONOMIAL) == 0
        assert monomial_degree(monomial(4, 5)) == 2

    def test_divide(self):
        assert monomial_divide_by_var(monomial(1, 2), 1) == monomial(2)

    def test_key_orders_by_degree_then_vars(self):
        items = [monomial(3), monomial(1, 2), CONST_MONOMIAL, monomial(1)]
        ordered = sorted(items, key=monomial_key)
        assert ordered == [CONST_MONOMIAL, monomial(1), monomial(3),
                           monomial(1, 2)]

    def test_format(self):
        assert format_monomial(CONST_MONOMIAL) == "1"
        assert format_monomial(monomial(2, 1)) == "v1*v2"
        assert format_monomial(monomial(1), {1: "a"}) == "a"


class TestConstruction:
    def test_zero_and_one(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.one() == 1
        assert len(Polynomial.zero()) == 0

    def test_constant(self):
        p = Polynomial.constant(5)
        assert p.constant_term() == 5
        assert Polynomial.constant(0).is_zero()
        with pytest.raises(PolynomialError):
            Polynomial.constant(1.5)

    def test_variable(self):
        v = Polynomial.variable(3)
        assert v.coefficient({3}) == 1
        assert v.support() == {3}

    def test_literal(self):
        pos = Polynomial.literal(2, False)
        neg = Polynomial.literal(2, True)
        assert pos == Polynomial.variable(2)
        assert neg == 1 - Polynomial.variable(2)

    def test_from_terms_merges(self):
        p = Polynomial.from_terms([(2, (1,)), (3, (1,)), (1, ())])
        assert p.coefficient({1}) == 5
        assert p.constant_term() == 1

    def test_from_terms_drops_zero(self):
        p = Polynomial.from_terms([(2, (1,)), (-2, (1,))])
        assert p.is_zero()


class TestRingOperations:
    def test_addition_cancels(self):
        x = Polynomial.variable(1)
        assert (x + (-x)).is_zero()
        assert x + 0 == x

    def test_subtraction(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert x - x == Polynomial.zero()
        assert (x - y) + y == x
        assert 1 - x == Polynomial.literal(1, True)

    def test_scalar_multiplication(self):
        x = Polynomial.variable(1)
        assert (3 * x).coefficient({1}) == 3
        assert (x * 0).is_zero()

    def test_product_applies_idempotence(self):
        x = Polynomial.variable(1)
        assert x * x == x
        p = (x + 1) * (x + 1)
        # (x+1)^2 = x^2 + 2x + 1 = 3x + 1 under idempotence
        assert p.coefficient({1}) == 3
        assert p.constant_term() == 1

    def test_distributivity_example(self):
        x, y, z = (Polynomial.variable(k) for k in (1, 2, 3))
        assert x * (y + z) == x * y + x * z

    def test_equality_with_int(self):
        assert Polynomial.constant(7) == 7
        assert Polynomial.zero() == 0
        assert Polynomial.variable(1) != 1

    def test_hashable(self):
        x = Polynomial.variable(1)
        assert hash(x) == hash(Polynomial.variable(1))

    def test_coerce_rejects_junk(self):
        with pytest.raises(PolynomialError):
            Polynomial.variable(1) + "x"


class TestInspection:
    @pytest.fixture()
    def sample(self):
        poly, pool = parse_polynomial("2*a*b - 3*a + 4", VariablePool())
        return poly, pool

    def test_len_counts_monomials(self, sample):
        poly, _ = sample
        assert len(poly) == 3

    def test_occurrences(self, sample):
        poly, pool = sample
        assert poly.occurrences(pool["a"]) == 2
        assert poly.occurrences(pool["b"]) == 1
        assert poly.occurrences(999) == 0

    def test_occurrence_counts(self, sample):
        poly, pool = sample
        counts = poly.occurrence_counts()
        assert counts[pool["a"]] == 2
        assert counts[pool["b"]] == 1

    def test_degree(self, sample):
        poly, _ = sample
        assert poly.degree() == 2
        assert Polynomial.zero().degree() == 0

    def test_contains_var(self, sample):
        poly, pool = sample
        assert poly.contains_var(pool["a"])
        assert not poly.contains_var(999)


class TestSubstitution:
    def test_substitute_absent_var_is_identity(self):
        x = Polynomial.variable(1)
        assert x.substitute(2, Polynomial.one()) is x

    def test_substitute_constant(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        p = 2 * x * y + y
        assert p.substitute(1, Polynomial.one()) == 3 * y
        assert p.substitute(1, Polynomial.zero()) == y

    def test_substitute_polynomial(self):
        poly, pool = parse_polynomial("a*b", VariablePool())
        rep, pool = parse_polynomial("x + y", pool)
        result = poly.substitute(pool["a"], rep)
        expected, _ = parse_polynomial("x*b + y*b", pool)
        assert result == expected

    def test_substitute_is_division_by_node_polynomial(self):
        # dividing by (a - xy) == substituting a = xy
        poly, pool = parse_polynomial("4*a + a*z", VariablePool())
        rep, pool = parse_polynomial("x*y", pool)
        result = poly.substitute(pool["a"], rep)
        expected, _ = parse_polynomial("4*x*y + x*y*z", pool)
        assert result == expected

    def test_substitute_many_simultaneous(self):
        poly, pool = parse_polynomial("a*b", VariablePool())
        a, b = pool["a"], pool["b"]
        result = poly.substitute_many({
            a: Polynomial.variable(b),
            b: Polynomial.variable(a),
        })
        # simultaneous: a->b, b->a yields b*a — the same monomial
        assert result == poly

    def test_transform_monomials(self):
        poly, pool = parse_polynomial("a*b + a + 7", VariablePool())
        a, b = pool["a"], pool["b"]

        ab = (1 << a) | (1 << b)

        def drop_ab(mono):
            if mono & ab == ab:
                return None
            return mono

        result, deleted, rewritten = poly.transform_monomials(drop_ab)
        assert deleted == 1
        assert rewritten == 0
        assert result == Polynomial.variable(a) + 7


class TestEvaluation:
    def test_boolean_evaluation(self):
        poly, pool = parse_polynomial("2*a*b - a + 1", VariablePool())
        a, b = pool["a"], pool["b"]
        assert poly.evaluate({a: 0, b: 0}) == 1
        assert poly.evaluate({a: 1, b: 0}) == 0
        assert poly.evaluate({a: 1, b: 1}) == 2

    def test_rejects_non_boolean(self):
        poly = Polynomial.variable(1)
        with pytest.raises(PolynomialError):
            poly.evaluate({1: 2})


class TestPrinting:
    def test_zero(self):
        assert str(Polynomial.zero()) == "0"

    def test_deterministic_order(self):
        # order is by degree then variable index (a was declared first)
        poly, pool = parse_polynomial("a + b + a*b", VariablePool())
        names = pool.names()
        assert poly.to_string(names) == "a + b + a*b"
        shuffled, _ = parse_polynomial("a*b + b + a", pool)
        assert shuffled.to_string(names) == "a + b + a*b"

    def test_signs(self):
        poly, pool = parse_polynomial("-a + 2*b - 3", VariablePool())
        assert poly.to_string(pool.names()) == "-3 -a + 2*b"

    def test_repr_compacts_large(self):
        big = Polynomial.from_terms([(1, (k,)) for k in range(100)])
        assert "monomials" in repr(big)
