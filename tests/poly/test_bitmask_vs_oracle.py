"""Randomized differential tests: bitmask kernel vs frozenset oracle.

Every algebraic operation of the packed-integer kernel is replayed on an
independent frozenset implementation (:mod:`tests.poly.frozenset_oracle`)
over hundreds of random polynomials; the results must agree term for
term.  This is the safety net for the monomial representation change —
a single mis-shifted bit shows up here long before it would corrupt a
verification run.
"""

import random

import pytest

from repro.core.vanishing import VanishingRuleSet
from repro.poly import Polynomial
from tests.poly.frozenset_oracle import (
    OraclePoly,
    OracleRuleSet,
    fs_to_mask,
    mask_to_fs,
)

N_VARS = 10
N_POLYS = 240


def random_poly(rng, max_terms=8, max_degree=4, n_vars=N_VARS):
    terms = []
    for _ in range(rng.randrange(max_terms + 1)):
        mono = frozenset(rng.sample(range(n_vars),
                                    rng.randrange(max_degree + 1)))
        coeff = rng.randint(-8, 8)
        terms.append((coeff, mono))
    kernel = Polynomial.from_terms(terms)
    oracle = OraclePoly()
    for coeff, mono in terms:
        oracle = oracle.add(OraclePoly({mono: coeff}))
    return kernel, oracle


def assert_same(kernel, oracle, context=""):
    assert dict(kernel.terms()) == oracle.to_mask_terms(), context


@pytest.fixture(scope="module")
def pairs():
    rng = random.Random(20260806)
    return [random_poly(rng) for _ in range(N_POLYS)]


def test_roundtrip_constructors(pairs):
    for kernel, oracle in pairs:
        assert_same(kernel, oracle)


def test_add_matches_oracle(pairs):
    for (ka, oa), (kb, ob) in zip(pairs, reversed(pairs)):
        assert_same(ka + kb, oa.add(ob))


def test_sub_matches_oracle(pairs):
    for (ka, oa), (kb, ob) in zip(pairs, reversed(pairs)):
        assert_same(ka - kb, oa.sub(ob))
        assert_same(kb - ka, ob.sub(oa))


def test_rsub_and_neg_match_oracle(pairs):
    for kernel, oracle in pairs:
        assert_same(3 - kernel, OraclePoly.constant(3).sub(oracle))
        assert_same(-kernel, oracle.neg())


def test_mul_matches_oracle(pairs):
    for (ka, oa), (kb, ob) in zip(pairs[:120], pairs[120:]):
        assert_same(ka * kb, oa.mul(ob))


def test_substitute_matches_oracle(pairs):
    rng = random.Random(7)
    for kernel, oracle in pairs:
        var = rng.randrange(N_VARS)
        krep, orep = random_poly(rng, max_terms=3, max_degree=2)
        assert_same(kernel.substitute(var, krep),
                    oracle.substitute_many({var: orep}),
                    f"substitute v{var}")


def test_substitute_many_matches_oracle(pairs):
    rng = random.Random(11)
    for kernel, oracle in pairs:
        kmap, omap = {}, {}
        for var in rng.sample(range(N_VARS), rng.randrange(1, 4)):
            krep, orep = random_poly(rng, max_terms=3, max_degree=2)
            kmap[var], omap[var] = krep, orep
        assert_same(kernel.substitute_many(kmap),
                    oracle.substitute_many(omap),
                    f"substitute_many {sorted(kmap)}")


def test_evaluate_matches_oracle(pairs):
    rng = random.Random(13)
    for kernel, oracle in pairs:
        assignment = {var: rng.randint(0, 1) for var in range(N_VARS)}
        assert kernel.evaluate(assignment) == oracle.evaluate(assignment)


def test_occurrence_index_matches_decoded_terms(pairs):
    for kernel, oracle in pairs:
        counts = {}
        for mono in oracle.terms:
            for var in mono:
                counts[var] = counts.get(var, 0) + 1
        assert kernel.occurrence_counts() == counts
        for var in range(N_VARS):
            assert kernel.occurrences(var) == counts.get(var, 0)
            assert kernel.contains_var(var) == (var in counts)


def random_rules(rng, n_vars=N_VARS):
    """A random mix of HA-product, absorption and FA-product rules."""
    rules = VanishingRuleSet()
    for _ in range(rng.randrange(1, 5)):
        var_a, var_b = rng.sample(range(n_vars), 2)
        kind = rng.randrange(3)
        try:
            if kind == 0:
                rules.add_ha_product_rule(var_a, rng.random() < 0.5,
                                          var_b, rng.random() < 0.5)
            elif kind == 1:
                rules.add_carry_absorption_rule(var_a, False,
                                                var_b, rng.random() < 0.5)
            else:
                extras = rng.sample(range(n_vars), 3)
                product = [(1, frozenset(extras))]
                rules.add_fa_product_rule(var_a, rng.random() < 0.5,
                                          var_b, rng.random() < 0.5,
                                          product)
        except ValueError:
            # a randomly drawn right-hand side may reproduce its
            # trigger pair; both implementations reject it identically
            continue
    return rules


def test_vanishing_reduce_matches_oracle():
    rng = random.Random(20260807)
    checked = 0
    for _ in range(N_POLYS):
        rules = random_rules(rng)
        if not len(rules):
            continue
        oracle_rules = OracleRuleSet(rules)
        kernel, oracle = random_poly(rng, max_terms=10, max_degree=5)
        got = rules.apply(kernel)
        want = oracle_rules.apply(oracle)
        assert dict(got.terms()) == want.to_mask_terms()
        checked += 1
    assert checked >= 200


def test_vanishing_reduce_into_matches_oracle_products():
    """The engine's bulk entry point (base | rep products) against a
    per-product oracle reduction, including zero-coefficient pruning."""
    rng = random.Random(29)
    for _ in range(220):
        rules = random_rules(rng)
        if not len(rules):
            continue
        oracle_rules = OracleRuleSet(rules)
        base = fs_to_mask(frozenset(rng.sample(range(N_VARS),
                                               rng.randrange(4))))
        kernel_rep, oracle_rep = random_poly(rng, max_terms=6, max_degree=3)
        coeff = rng.choice([-2, -1, 1, 2, 3])

        out = {}
        rules.reduce_products_into(out, base, kernel_rep._terms.items(),
                                   coeff)
        got = {m: c for m, c in out.items() if c}

        want = {}
        for rep_mono, rep_coeff in oracle_rep.terms.items():
            local = {}
            oracle_rules.reduce(mask_to_fs(base) | rep_mono, 1, local)
            for mono, factor in local.items():
                mask = fs_to_mask(mono)
                want[mask] = want.get(mask, 0) + coeff * rep_coeff * factor
        want = {m: c for m, c in want.items() if c}
        assert got == want
