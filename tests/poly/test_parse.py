"""Tests for the polynomial expression parser."""

import pytest

from repro.errors import PolynomialError
from repro.poly import VariablePool, parse_polynomial


class TestParser:
    def test_empty(self):
        poly, _ = parse_polynomial("")
        assert poly.is_zero()

    def test_constant(self):
        poly, _ = parse_polynomial("42")
        assert poly == 42

    def test_variable_and_reuse(self):
        pool = VariablePool()
        p1, _ = parse_polynomial("a", pool)
        p2, _ = parse_polynomial("a + a", pool)
        assert p2 == 2 * p1

    def test_coefficients_and_products(self):
        poly, pool = parse_polynomial("3*a*b", VariablePool())
        assert poly.coefficient({pool["a"], pool["b"]}) == 3

    def test_negative_terms(self):
        poly, pool = parse_polynomial("-a - 2*b + 3", VariablePool())
        assert poly.coefficient({pool["a"]}) == -1
        assert poly.coefficient({pool["b"]}) == -2
        assert poly.constant_term() == 3

    def test_bracketed_names(self):
        poly, pool = parse_polynomial("2*Out[5] + Out[4]", VariablePool())
        assert poly.coefficient({pool["Out[5]"]}) == 2

    def test_pool_round_trip(self):
        pool = VariablePool()
        poly, _ = parse_polynomial("x*y - 1", pool)
        names = pool.names()
        assert poly.to_string(names) == "-1 + x*y"

    @pytest.mark.parametrize("bad", ["a +", "* a", "a b", "3 4", "a ^ 2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PolynomialError):
            parse_polynomial(bad)

    def test_evaluation_round_trip(self):
        poly, pool = parse_polynomial("a*b - a - b + 1", VariablePool())
        a, b = pool["a"], pool["b"]
        # (1-a)(1-b)
        for av in (0, 1):
            for bv in (0, 1):
                assert poly.evaluate({a: av, b: bv}) == (1 - av) * (1 - bv)
