"""Property-based tests (hypothesis) for the polynomial algebra.

These pin the algebraic foundations of backward rewriting: the
commutative-ring axioms of the polynomial arithmetic (modulo the
Boolean idempotence ``x**2 = x``) and the semantics of substitution
(substituting then evaluating equals evaluating with the substituted
value), which is exactly what makes a rewriting step equal to an ideal
division step.
"""

from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial, monomial_vars

VARS = st.integers(min_value=1, max_value=6)
MONOMIALS = st.frozensets(VARS, max_size=4)
COEFFS = st.integers(min_value=-8, max_value=8)


@st.composite
def polynomials(draw, max_terms=5):
    terms = draw(st.lists(st.tuples(COEFFS, MONOMIALS), max_size=max_terms))
    return Polynomial.from_terms(terms)


ASSIGNMENTS = st.fixed_dictionaries({v: st.integers(0, 1)
                                     for v in range(1, 7)})


@given(polynomials(), polynomials())
def test_addition_commutes(p, q):
    assert p + q == q + p


@given(polynomials(), polynomials(), polynomials())
def test_addition_associates(p, q, r):
    assert (p + q) + r == p + (q + r)


@given(polynomials())
def test_additive_inverse(p):
    assert (p + (-p)).is_zero()


@given(polynomials(), polynomials())
def test_multiplication_commutes(p, q):
    assert p * q == q * p


@settings(max_examples=60)
@given(polynomials(max_terms=4), polynomials(max_terms=4),
       polynomials(max_terms=4))
def test_multiplication_associates(p, q, r):
    assert (p * q) * r == p * (q * r)


@settings(max_examples=60)
@given(polynomials(max_terms=4), polynomials(max_terms=4),
       polynomials(max_terms=4))
def test_distributivity(p, q, r):
    assert p * (q + r) == p * q + p * r


@given(polynomials())
def test_idempotence_of_variables(p):
    x = Polynomial.variable(1)
    assert x * x == x
    assert (p * x) * x == p * x


@given(polynomials(), ASSIGNMENTS)
def test_evaluation_is_ring_homomorphism_add(p, assignment):
    q = Polynomial.variable(2) + 3
    assert ((p + q).evaluate(assignment)
            == p.evaluate(assignment) + q.evaluate(assignment))


@settings(max_examples=80)
@given(polynomials(max_terms=4), polynomials(max_terms=4), ASSIGNMENTS)
def test_evaluation_is_ring_homomorphism_mul(p, q, assignment):
    assert ((p * q).evaluate(assignment)
            == p.evaluate(assignment) * q.evaluate(assignment))


@settings(max_examples=80)
@given(polynomials(), VARS, polynomials(max_terms=3), ASSIGNMENTS)
def test_substitution_semantics(p, var, replacement, assignment):
    """Substitution agrees with evaluation when the replacement itself
    evaluates to a Boolean value — the soundness core of backward
    rewriting."""
    value = replacement.evaluate(assignment)
    if value not in (0, 1):
        return  # only Boolean-consistent replacements model circuit nodes
    substituted = p.substitute(var, replacement)
    shadowed = dict(assignment)
    shadowed[var] = value
    assert substituted.evaluate(assignment) == p.evaluate(shadowed)


@given(polynomials(), VARS)
def test_substitution_removes_variable(p, var):
    result = p.substitute(var, Polynomial.constant(1))
    assert var not in result.support()


@given(polynomials(), VARS, polynomials(max_terms=3))
def test_substitution_no_op_when_absent(p, var, replacement):
    if var not in p.support():
        assert p.substitute(var, replacement) == p


@given(polynomials())
def test_support_matches_occurrences(p):
    for var in p.support():
        assert p.occurrences(var) >= 1
    counts = p.occurrence_counts()
    assert set(counts) == p.support()


@given(polynomials())
def test_print_parse_round_trip(p):
    from repro.poly import parse_polynomial

    text = p.to_string()
    parsed, pool = parse_polynomial(text)
    # map names back: v<k> -> k
    remap = {pool.by_name[name]: int(name[1:]) for name in pool.by_name}
    rebuilt = Polynomial.from_terms(
        (coeff, frozenset(remap[v] for v in monomial_vars(mono)))
        for mono, coeff in parsed.terms())
    assert rebuilt == p
