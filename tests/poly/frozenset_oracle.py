"""Frozenset reference oracle for the packed-bitmask polynomial kernel.

The production kernel (:mod:`repro.poly`) packs monomials into Python
integers; this module is an independent, deliberately naive
reimplementation of the same algebra over ``frozenset`` monomials — the
representation the kernel replaced.  The test suite pits the two against
each other on random inputs (`test_bitmask_vs_oracle`) and end-to-end
through the verifier (`tests/integration/test_oracle_parity`): any
disagreement means the bit-twiddling broke the algebra.

The oracle follows the *documented* semantics of the kernel:

* monomials are variable sets, multiplication is set union
  (multilinearity: ``x**2 = x``);
* vanishing-rule application picks the first violated rule scanning
  variables in ascending order, rules in registration order;
* single-term coefficient-1 rewrites chain without consuming rewrite
  depth; multi-term expansions recurse with a depth cap of 24.
"""

from __future__ import annotations

from repro.poly.monomial import monomial_vars

_MAX_REWRITE_DEPTH = 24


def mask_to_fs(mask):
    """Packed bitmask monomial -> frozenset of variables."""
    return frozenset(monomial_vars(mask))


def fs_to_mask(mono):
    """Frozenset monomial -> packed bitmask."""
    mask = 0
    for var in mono:
        mask |= 1 << var
    return mask


EMPTY = frozenset()


class OraclePoly:
    """A polynomial as ``{frozenset-of-vars: coefficient}``."""

    def __init__(self, terms=None):
        self.terms = {m: c for m, c in (terms or {}).items() if c}

    @classmethod
    def from_polynomial(cls, poly):
        return cls({mask_to_fs(m): c for m, c in poly.terms()})

    def to_mask_terms(self):
        """``{bitmask: coefficient}`` for comparison with the kernel."""
        return {fs_to_mask(m): c for m, c in self.terms.items()}

    @classmethod
    def constant(cls, value):
        return cls({EMPTY: value})

    @classmethod
    def variable(cls, var):
        return cls({frozenset((var,)): 1})

    def add(self, other):
        out = dict(self.terms)
        for mono, coeff in other.terms.items():
            out[mono] = out.get(mono, 0) + coeff
        return OraclePoly(out)

    def neg(self):
        return OraclePoly({m: -c for m, c in self.terms.items()})

    def sub(self, other):
        return self.add(other.neg())

    def mul(self, other):
        out = {}
        for mono_a, coeff_a in self.terms.items():
            for mono_b, coeff_b in other.terms.items():
                mono = mono_a | mono_b
                out[mono] = out.get(mono, 0) + coeff_a * coeff_b
        return OraclePoly(out)

    def scale(self, value):
        return OraclePoly({m: c * value for m, c in self.terms.items()})

    def substitute_many(self, mapping):
        """Simultaneously replace every mapped variable by its oracle
        polynomial (multilinear product of the replacements)."""
        out = OraclePoly()
        for mono, coeff in self.terms.items():
            product = OraclePoly({frozenset(mono - set(mapping)): coeff})
            for var in sorted(mono & set(mapping)):
                product = product.mul(mapping[var])
            out = out.add(product)
        return out

    def evaluate(self, assignment):
        total = 0
        for mono, coeff in self.terms.items():
            value = coeff
            for var in mono:
                value *= assignment[var]
            total += value
        return total


class OracleRuleSet:
    """Frozenset reimplementation of vanishing pair-rule application.

    Built from a compiled :class:`repro.core.vanishing.VanishingRuleSet`
    so rule *compilation* stays shared and only *application* is
    independently reimplemented.
    """

    def __init__(self, rules):
        self.by_var = {}
        for var, entries in rules._by_var.items():
            self.by_var[var] = [
                (partner_bit.bit_length() - 1,
                 [(coeff, mask_to_fs(extra)) for coeff, extra in terms])
                for partner_bit, _pair_mask, terms in entries]

    def violated(self, mono):
        for var in sorted(mono):
            for partner, terms in self.by_var.get(var, ()):
                if partner in mono:
                    return var, partner, terms
        return None

    def reduce(self, mono, coeff, out, depth=0):
        """Accumulate the normal form of ``coeff * mono`` into ``out``
        (a ``{frozenset: factor}`` dict; zero factors are kept)."""
        while True:
            rule = None if depth > _MAX_REWRITE_DEPTH else self.violated(mono)
            if rule is None:
                out[mono] = out.get(mono, 0) + coeff
                return
            var, partner, terms = rule
            base = mono - {var, partner}
            if not terms:
                return
            if len(terms) == 1 and terms[0][0] == 1:
                mono = base | terms[0][1]
                continue
            for term_coeff, extra in terms:
                self.reduce(base | extra, coeff * term_coeff, out, depth + 1)
            return

    def apply(self, poly):
        """Normalize an :class:`OraclePoly` against all rules."""
        out = {}
        for mono, coeff in poly.terms.items():
            local = {}
            self.reduce(mono, 1, local)
            for result_mono, factor in local.items():
                out[result_mono] = out.get(result_mono, 0) + coeff * factor
        return OraclePoly(out)
