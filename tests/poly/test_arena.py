"""Three-way randomized differential suite: arena vs dict vs frozenset.

The arena refactor gives :class:`~repro.poly.Polynomial` a second inner
representation (sorted parallel columns, :mod:`repro.poly.arena`) next
to the historical dict form.  Every algebraic operation is therefore
replayed three ways over hundreds of random polynomials:

* *dict* — the operation on dict-backed polynomials (the boundary and
  oracle representation inside the kernel);
* *arena* — the same operation on arena-backed polynomials (built via
  ``PolyArena.from_dict`` so the sorted-merge kernels do the work);
* *frozenset* — the independent naive reimplementation from
  :mod:`tests.poly.frozenset_oracle`.

All three must agree term for term, in the exact ring and in a small
modular ring (where coefficients must additionally come out canonical
in ``[0, p)``).  Arena results are also checked for the columnar
invariants (strictly ascending monomials, no stored zeros) and for
occurrence-index consistency — the index is carried by delta updates
through the kernels, so a drift here means a stale candidate sort in
Algorithm 2.
"""

import random

import pytest

from repro.poly import Polynomial
from repro.poly.arena import PolyArena
from repro.poly.ring import EXACT, ModularRing
from tests.poly.frozenset_oracle import OraclePoly

N_VARS = 10
N_POLYS = 320
MOD_RING = ModularRing(10007)

RINGS = [pytest.param(EXACT, id="exact"),
         pytest.param(MOD_RING, id="modular")]


def random_terms(rng, max_terms=8, max_degree=4, n_vars=N_VARS):
    return [(rng.randint(-8, 8),
             frozenset(rng.sample(range(n_vars),
                                  rng.randrange(max_degree + 1))))
            for _ in range(rng.randrange(max_terms + 1))]


def build_three(terms, ring):
    """(dict-backed, arena-backed, oracle) polynomials from one term list."""
    dict_poly = Polynomial.from_terms(terms, ring=ring)
    arena_poly = Polynomial._from_arena(
        PolyArena.from_dict(dict(dict_poly.terms()), ring=ring))
    oracle = OraclePoly()
    for coeff, mono in terms:
        oracle = oracle.add(OraclePoly({mono: coeff}))
    return dict_poly, arena_poly, oracle


def oracle_terms(oracle, ring):
    """The oracle's terms canonicalized into ``ring``."""
    mod = ring.modulus
    if mod is None:
        return oracle.to_mask_terms()
    return {m: c % mod for m, c in oracle.to_mask_terms().items()
            if c % mod}


def check_arena_invariants(poly, ring):
    """Columnar invariants of an arena-backed result."""
    if poly._arena is None:
        return
    arena = poly._arena
    monos = arena.monos
    assert all(monos[i] < monos[i + 1] for i in range(len(monos) - 1)), \
        "arena monomial column not strictly ascending"
    mod = ring.modulus
    for coeff in arena.coeffs:
        assert coeff != 0, "arena stores a zero coefficient"
        if mod is not None:
            assert 0 < coeff < mod, "non-canonical modular coefficient"
    if poly._occ is not None:
        counts = {}
        for mono in monos:
            while mono:
                low = mono & -mono
                var = low.bit_length() - 1
                counts[var] = counts.get(var, 0) + 1
                mono ^= low
        assert poly._occ == counts, "carried occurrence index drifted"


def assert_three_way(dict_result, arena_result, oracle, ring, context=""):
    want = oracle_terms(oracle, ring)
    assert dict(dict_result.terms()) == want, f"dict path: {context}"
    assert dict(arena_result.terms()) == want, f"arena path: {context}"
    check_arena_invariants(arena_result, ring)


@pytest.fixture(scope="module")
def triples():
    rng = random.Random(20260808)
    out = {}
    for ring in (EXACT, MOD_RING):
        term_rng = random.Random(20260808)
        out[ring.modulus] = [build_three(random_terms(term_rng), ring)
                             for _ in range(N_POLYS)]
    return out


def _ring_triples(triples, ring):
    return triples[ring.modulus]


@pytest.mark.parametrize("ring", RINGS)
def test_roundtrip(triples, ring):
    for dict_poly, arena_poly, oracle in _ring_triples(triples, ring):
        assert_three_way(dict_poly, arena_poly, oracle, ring, "roundtrip")
        assert arena_poly == dict_poly
        assert len(arena_poly) == len(dict_poly)
        assert arena_poly.support() == dict_poly.support()
        assert (arena_poly.occurrence_counts()
                == dict_poly.occurrence_counts())


@pytest.mark.parametrize("ring", RINGS)
def test_add(triples, ring):
    items = _ring_triples(triples, ring)
    for (da, aa, oa), (db, ab, ob) in zip(items, reversed(items)):
        assert_three_way(da + db, aa + ab, oa.add(ob), ring, "add")


@pytest.mark.parametrize("ring", RINGS)
def test_sub(triples, ring):
    items = _ring_triples(triples, ring)
    for (da, aa, oa), (db, ab, ob) in zip(items, reversed(items)):
        assert_three_way(da - db, aa - ab, oa.sub(ob), ring, "sub")
        assert_three_way(db - da, ab - aa, ob.sub(oa), ring, "rsub")


@pytest.mark.parametrize("ring", RINGS)
def test_mul(triples, ring):
    items = _ring_triples(triples, ring)
    half = len(items) // 2
    for (da, aa, oa), (db, ab, ob) in zip(items[:half], items[half:]):
        assert_three_way(da * db, aa * ab, oa.mul(ob), ring, "mul")


@pytest.mark.parametrize("ring", RINGS)
def test_substitute(triples, ring):
    rng = random.Random(31)
    for dict_poly, arena_poly, oracle in _ring_triples(triples, ring):
        var = rng.randrange(N_VARS)
        rep_terms = random_terms(rng, max_terms=3, max_degree=2)
        drep, arep, orep = build_three(rep_terms, ring)
        assert_three_way(dict_poly.substitute(var, drep),
                         arena_poly.substitute(var, arep),
                         oracle.substitute_many({var: orep}),
                         ring, f"substitute v{var}")


@pytest.mark.parametrize("ring", RINGS)
def test_substitute_many(triples, ring):
    rng = random.Random(37)
    for dict_poly, arena_poly, oracle in _ring_triples(triples, ring):
        dmap, amap, omap = {}, {}, {}
        for var in rng.sample(range(N_VARS), rng.randrange(1, 4)):
            rep_terms = random_terms(rng, max_terms=3, max_degree=2)
            dmap[var], amap[var], omap[var] = build_three(rep_terms, ring)
        assert_three_way(dict_poly.substitute_many(dmap),
                         arena_poly.substitute_many(amap),
                         oracle.substitute_many(omap),
                         ring, f"substitute_many {sorted(dmap)}")


@pytest.mark.parametrize("ring", RINGS)
def test_substitute_untouched_returns_self(triples, ring):
    """A substitution that touches nothing must not rebuild either
    representation (the engine relies on identity to skip commits)."""
    spare = Polynomial.variable(N_VARS + 5, ring=ring)
    for dict_poly, arena_poly, _oracle in _ring_triples(triples, ring):
        assert dict_poly.substitute(N_VARS + 3, spare) is dict_poly
        assert arena_poly.substitute(N_VARS + 3, spare) is arena_poly


@pytest.mark.parametrize("ring", RINGS)
def test_arena_dict_conversion_roundtrip(triples, ring):
    """to_arena/to_dict round-trips preserve terms exactly."""
    for dict_poly, arena_poly, _oracle in _ring_triples(triples, ring):
        assert dict_poly.to_arena().to_dict() == dict(dict_poly.terms())
        rebuilt = Polynomial._from_arena(arena_poly.to_arena())
        assert dict(rebuilt.terms()) == dict(dict_poly.terms())


@pytest.mark.parametrize("ring", RINGS)
def test_sorted_terms_match_across_representations(triples, ring):
    for dict_poly, arena_poly, _oracle in _ring_triples(triples, ring):
        assert arena_poly.sorted_terms() == dict_poly.sorted_terms()
        assert arena_poly.to_string() == dict_poly.to_string()


def test_slots_prevent_instance_dicts():
    """Both representations are __slots__-only: the rewriting loop
    allocates millions of short-lived instances, and a per-instance
    __dict__ would roughly double the allocation volume."""
    poly = Polynomial.variable(3)
    arena = poly.to_arena()
    for obj in (poly, arena):
        assert not hasattr(obj, "__dict__")
        with pytest.raises(AttributeError):
            obj.stray_attribute = 1
