"""Coefficient-ring semantics: unit tests plus a randomized
differential suite checking that reduction mod p is a ring homomorphism
through every kernel operation (add/sub/mul/substitute/vanishing-reduce
and evaluation)."""

import random

import pytest

from repro.core.vanishing import VanishingRuleSet
from repro.errors import ConfigError, PolynomialError
from repro.poly import (
    EXACT,
    PRIMES,
    ModularRing,
    Polynomial,
    get_ring,
)
from repro.poly.ring import is_probable_prime, next_prime_above

P = 97


class TestPrimality:
    def test_small_numbers(self):
        primes = [2, 3, 5, 7, 11, 13, 97, 101, 2_305_843_009_213_693_951]
        for n in primes:
            assert is_probable_prime(n)
        for n in [-7, 0, 1, 4, 9, 91, 561, 2_305_843_009_213_693_953]:
            assert not is_probable_prime(n)

    def test_next_prime_above(self):
        assert next_prime_above(0) == 3
        assert next_prime_above(3) == 5
        assert next_prime_above(89) == 97
        for bits in (61, 66, 129, 977):
            prime = next_prime_above(1 << bits)
            assert prime > 1 << bits
            assert prime % 2 == 1
            assert is_probable_prime(prime)
            ModularRing(prime)  # usable as a coefficient ring modulus

    def test_builtin_schedule_is_prime(self):
        assert len(set(PRIMES)) == len(PRIMES)
        for p in PRIMES:
            assert p % 2 == 1
            assert is_probable_prime(p)


class TestRingObjects:
    def test_exact_defaults(self):
        assert EXACT.modulus is None
        assert EXACT.name == "exact"
        assert EXACT.convert(-5) == -5
        assert EXACT.divide(12, 4) == (3, True)
        assert EXACT.divide(13, 4) == (3, False)
        assert EXACT.divide(0, 0) == (0, True)
        assert EXACT.divide(3, 0) == (0, False)

    def test_modular_basics(self):
        ring = ModularRing(P)
        assert ring.modulus == P
        assert ring.name == f"modular:{P}"
        assert ring.convert(-1) == P - 1
        assert ring.add(P - 1, 5) == 4
        assert ring.mul(10, 10) == 100 % P
        quotient, exact = ring.divide(1, 2)
        assert exact and (2 * quotient) % P == 1

    def test_modular_validation(self):
        with pytest.raises(ConfigError):
            ModularRing(4)  # even
        with pytest.raises(ConfigError):
            ModularRing(2)  # 2 must be a unit
        with pytest.raises(ConfigError):
            ModularRing(91)  # 7 * 13
        with pytest.raises(ConfigError):
            ModularRing(1)
        with pytest.raises(ConfigError):
            ModularRing("97")
        with pytest.raises(ConfigError):
            ModularRing(True)

    def test_equality_and_hash(self):
        assert ModularRing(P) == ModularRing(P)
        assert ModularRing(P) != ModularRing(101)
        assert ModularRing(P) != EXACT
        assert len({ModularRing(P), ModularRing(P), EXACT}) == 2

    def test_get_ring(self):
        assert get_ring("exact") is EXACT
        assert get_ring(EXACT) is EXACT
        assert get_ring("modular").modulus == PRIMES[0]
        assert get_ring("modular:97").modulus == 97
        ring = ModularRing(P)
        assert get_ring(ring) is ring
        for bad in ("float", "modular:", "modular:abc", "modular:4",
                    None, 13):
            with pytest.raises(ConfigError):
                get_ring(bad)


class TestPolynomialRing:
    def test_default_is_exact(self):
        poly = Polynomial.variable(3)
        assert poly.ring is EXACT

    def test_constructor_canonicalizes(self):
        ring = ModularRing(P)
        poly = Polynomial({0: -1, 1 << 2: P + 3}, ring=ring)
        assert poly.coefficient(0) == P - 1
        assert poly.coefficient([2]) == 3

    def test_to_ring_round_trip(self):
        poly = Polynomial({0: 200, 1 << 1: -1, 1 << 2: P})
        ring = ModularRing(P)
        modp = poly.to_ring(ring)
        assert modp.ring is ring
        assert modp.coefficient(0) == 200 % P
        assert modp.coefficient([1]) == P - 1
        assert modp.coefficient([2]) == 0  # P ≡ 0 vanishes
        assert poly.to_ring(EXACT) is poly
        assert modp.to_ring(ring) is modp

    def test_mixed_ring_ops_resolve_to_modular(self):
        ring = ModularRing(P)
        exact = Polynomial.constant(100)
        modp = Polynomial.constant(100, ring=ring)
        for combined in (exact + modp, modp + exact, exact * modp):
            assert combined.ring is ring
        assert (exact + modp).coefficient(0) == 200 % P

    def test_different_moduli_refuse_to_combine(self):
        a = Polynomial.constant(1, ring=ModularRing(97))
        b = Polynomial.constant(1, ring=ModularRing(101))
        with pytest.raises(PolynomialError):
            a + b

    def test_evaluate_is_canonical(self):
        ring = ModularRing(3)
        # 2x + y at x=y=1 is 3 ≡ 0 (mod 3): int-nonzero but ring-zero
        poly = Polynomial({1 << 0: 2, 1 << 1: 1}, ring=ring)
        assert poly.evaluate({0: 1, 1: 1}) == 0
        assert poly.evaluate({0: 1, 1: 0}) == 2


def random_polynomial(rng, nvars=10, max_terms=8, coeff_bound=60,
                      ring=None):
    terms = {}
    for _ in range(rng.randint(1, max_terms)):
        mono = 0
        for var in rng.sample(range(nvars), rng.randint(0, 4)):
            mono |= 1 << var
        terms[mono] = terms.get(mono, 0) + rng.randint(-coeff_bound,
                                                       coeff_bound)
    return Polynomial(terms, ring=ring)


def build_rules(ring=None):
    """A small rule table exercising deletion, shrinking and expansion."""
    rules = VanishingRuleSet()
    rules.add_ha_product_rule(4, False, 5, False)   # delete
    rules.add_ha_product_rule(6, True, 7, False)    # shrink to v7
    rules.add_ha_product_rule(8, True, 9, True)     # expand (3 terms)
    rules.add_carry_absorption_rule(4, False, 0, False)
    if ring is not None:
        rules.set_ring(ring)
    return rules


class TestDifferential:
    """Exact vs ModularRing(p) on >= 200 random polynomials: reducing
    the exact result mod p must equal running the whole operation in
    the modular ring."""

    def test_ring_ops_differential(self):
        rng = random.Random(20260806)
        ring = ModularRing(P)
        for _ in range(120):
            a = random_polynomial(rng)
            b = random_polynomial(rng)
            am = a.to_ring(ring)
            bm = b.to_ring(ring)
            assert (a + b).to_ring(ring) == am + bm
            assert (a - b).to_ring(ring) == am - bm
            assert (a * b).to_ring(ring) == am * bm
            assert (-a).to_ring(ring) == -am
            scalar = rng.randint(-200, 200)
            assert (a * scalar).to_ring(ring) == am * scalar

    def test_substitute_differential(self):
        rng = random.Random(7)
        ring = ModularRing(P)
        for _ in range(60):
            a = random_polynomial(rng)
            replacement = random_polynomial(rng, max_terms=3)
            var = rng.randrange(10)
            exact = a.substitute(var, replacement)
            modular = a.to_ring(ring).substitute(
                var, replacement.to_ring(ring))
            assert exact.to_ring(ring) == modular

    def test_vanishing_reduce_differential(self):
        rng = random.Random(99)
        ring = ModularRing(P)
        exact_rules = build_rules()
        mod_rules = build_rules(ring)
        for _ in range(60):
            poly = random_polynomial(rng, nvars=12)
            exact = exact_rules.apply(poly)
            modular = mod_rules.apply(poly.to_ring(ring))
            assert exact.to_ring(ring) == modular

    def test_evaluate_differential(self):
        rng = random.Random(5)
        ring = ModularRing(P)
        for _ in range(60):
            poly = random_polynomial(rng)
            assignment = {v: rng.getrandbits(1) for v in range(10)}
            exact_value = poly.evaluate(assignment)
            assert poly.to_ring(ring).evaluate(assignment) == exact_value % P
