"""Exhaustive functional validation of the multiplier generators.

Every architecture combination is the product of a PPG, a PPA and an
FSA; each is validated exhaustively at small widths against Python
integer multiplication — the ground truth every other experiment builds
on.
"""

import pytest

from repro.genmul import (
    FSA_CODES,
    MultiplierSpec,
    PPA_CODES,
    generate_multiplier,
)
from repro.errors import GeneratorError

from tests.conftest import check_multiplier_exhaustive, check_multiplier_random


class TestSimplePpgGrid:
    @pytest.mark.parametrize("ppa", sorted(PPA_CODES))
    def test_all_accumulators_with_ripple(self, ppa):
        check_multiplier_exhaustive(
            MultiplierSpec.from_name(f"SP-{ppa}-RC", 3, 3))

    @pytest.mark.parametrize("fsa", sorted(FSA_CODES))
    def test_all_final_adders_with_dadda(self, fsa):
        check_multiplier_exhaustive(
            MultiplierSpec.from_name(f"SP-DT-{fsa}", 3, 3))

    @pytest.mark.parametrize("arch", [
        "SP-DT-LF", "SP-AR-CK", "SP-BD-KS", "SP-WT-CL",
        "SP-AR-RC", "SP-WT-BK", "SP-OS-CU",
    ])
    def test_paper_architectures_4x4(self, arch):
        check_multiplier_exhaustive(MultiplierSpec.from_name(arch, 4, 4))

    @pytest.mark.parametrize("widths", [(4, 2), (2, 4), (5, 3), (1, 4)])
    def test_rectangular(self, widths):
        n, m = widths
        check_multiplier_exhaustive(MultiplierSpec.from_name("SP-WT-RC", n, m))

    def test_one_by_one(self):
        check_multiplier_exhaustive(MultiplierSpec.from_name("SP-AR-RC", 1, 1))


class TestBoothGrid:
    @pytest.mark.parametrize("ppa", sorted(PPA_CODES))
    def test_all_accumulators(self, ppa):
        check_multiplier_exhaustive(
            MultiplierSpec.from_name(f"BP-{ppa}-RC", 4, 4))

    @pytest.mark.parametrize("fsa", sorted(FSA_CODES))
    def test_all_final_adders(self, fsa):
        check_multiplier_exhaustive(
            MultiplierSpec.from_name(f"BP-WT-{fsa}", 4, 4))

    @pytest.mark.parametrize("widths", [(3, 3), (5, 3), (4, 6), (2, 2), (7, 5)])
    def test_odd_and_rectangular(self, widths):
        n, m = widths
        check_multiplier_exhaustive(MultiplierSpec.from_name("BP-AR-RC", n, m))

    def test_booth_needs_two_bits(self):
        with pytest.raises(GeneratorError):
            generate_multiplier("BP-AR-RC", 1, 1)


class TestSignedBooth:
    @pytest.mark.parametrize("arch", ["BPS-AR-RC", "BPS-WT-KS", "BPS-DT-CL",
                                      "BPS-CP-RC"])
    def test_square(self, arch):
        check_multiplier_exhaustive(MultiplierSpec.from_name(arch, 4, 4))

    @pytest.mark.parametrize("widths", [(2, 2), (3, 3), (5, 3), (4, 5)])
    def test_odd_and_rectangular(self, widths):
        n, m = widths
        check_multiplier_exhaustive(MultiplierSpec.from_name("BPS-AR-RC",
                                                             n, m))

    def test_signed_flag(self):
        assert MultiplierSpec.from_name("BPS-WT-RC", 4).signed

    def test_minimum_width(self):
        with pytest.raises(GeneratorError):
            generate_multiplier("BPS-AR-RC", 1, 4)


class TestSignedBaughWooley:
    @pytest.mark.parametrize("arch", ["SPS-AR-RC", "SPS-DT-KS", "SPS-WT-LF"])
    def test_square(self, arch):
        check_multiplier_exhaustive(MultiplierSpec.from_name(arch, 4, 4))

    @pytest.mark.parametrize("widths", [(3, 4), (4, 3), (5, 3)])
    def test_rectangular(self, widths):
        n, m = widths
        check_multiplier_exhaustive(MultiplierSpec.from_name("SPS-AR-RC", n, m))

    def test_minimum_width(self):
        check_multiplier_exhaustive(MultiplierSpec.from_name("SPS-AR-RC", 2, 2))
        with pytest.raises(GeneratorError):
            generate_multiplier("SPS-AR-RC", 1, 2)


class TestLargerRandom:
    @pytest.mark.parametrize("arch", [
        "SP-DT-LF", "SP-BD-KS", "BP-OS-CU", "BP-WT-CL", "SP-AR-CK",
    ])
    def test_8x8_random(self, arch):
        spec = MultiplierSpec.from_name(arch, 8, 8)
        check_multiplier_random(spec, generate_multiplier(spec), samples=40)

    def test_16x16_random(self):
        spec = MultiplierSpec.from_name("SP-WT-KS", 16, 16)
        check_multiplier_random(spec, generate_multiplier(spec), samples=25)


class TestInterface:
    def test_io_naming(self, mult_4x4_array):
        assert mult_4x4_array.input_names[:4] == ["a0", "a1", "a2", "a3"]
        assert mult_4x4_array.input_names[4:] == ["b0", "b1", "b2", "b3"]
        assert mult_4x4_array.output_names[0] == "p0"
        assert mult_4x4_array.num_outputs == 8

    def test_spec_properties(self):
        spec = MultiplierSpec.from_name("SP-DT-LF", 8, 6)
        assert spec.output_width == 14
        assert spec.architecture == "SP-DT-LF"
        assert spec.name() == "SP-DT-LF_8x6"
        assert not spec.signed

    def test_signed_flag_derived(self):
        assert MultiplierSpec.from_name("SPS-AR-RC", 4).signed

    def test_name_argument_requires_width(self):
        with pytest.raises(GeneratorError):
            generate_multiplier("SP-AR-RC")

    def test_invalid_width(self):
        with pytest.raises(GeneratorError):
            generate_multiplier("SP-AR-RC", 0)
