"""Unit tests for the individual generator stages (PPG / PPA / FSA)."""

import itertools

import pytest

from repro.aig.aig import Aig, FALSE, TRUE
from repro.aig.simulate import evaluate_single, outputs_as_int, simulate_words
from repro.errors import GeneratorError
from repro.genmul.booth import booth_digits, booth_ppg
from repro.genmul.fsa import FSA_BUILDERS
from repro.genmul.ppa import PPA_BUILDERS
from repro.genmul.ppg import simple_ppg
from repro.genmul.prefix import PREFIX_NETWORKS, combine, prefix_adder
from repro.genmul.reduction import (
    ColumnMatrix,
    constant_row,
    csa_rows,
    dadda_sequence,
    pack_rows,
    padded_row,
)


def rows_value(aig, rows, assignment):
    """Evaluate the arithmetic value of a row set under an assignment
    (input variable -> bit); internal signals are simulated."""
    from repro.aig.aig import lit_is_negated, lit_var
    from repro.aig.simulate import node_values

    values = node_values(aig, assignment)
    total = 0
    for row in rows:
        for pos, bit in enumerate(row):
            if bit == FALSE:
                continue
            value = values[lit_var(bit)]
            if lit_is_negated(bit):
                value ^= 1
            total += value << pos
    return total


class TestReductionPrimitives:
    def test_padded_row(self):
        assert padded_row([3, 5], 4, offset=1) == [FALSE, 3, 5, FALSE]
        assert padded_row([3, 5, 7], 2) == [3, 5]

    def test_constant_row(self):
        assert constant_row(0b101, 4) == [TRUE, FALSE, TRUE, FALSE]
        with pytest.raises(GeneratorError):
            constant_row(-1, 4)

    def test_dadda_sequence(self):
        assert dadda_sequence(30) == [2, 3, 4, 6, 9, 13, 19, 28, 42]

    def test_pack_rows_preserves_column_sums(self):
        rows = [[2, FALSE, 4, FALSE], [FALSE, FALSE, 6, FALSE],
                [FALSE, FALSE, 8, FALSE]]
        packed = pack_rows(rows, 4)
        assert len(packed) == 3  # column 2 has height 3
        flat = sorted((j, bit) for row in packed
                      for j, bit in enumerate(row) if bit != FALSE)
        assert flat == [(0, 2), (2, 4), (2, 6), (2, 8)]

    def test_csa_preserves_sum(self):
        aig = Aig()
        bits = aig.add_inputs(9)
        width = 5
        rows = [padded_row(bits[0:3], width),
                padded_row(bits[3:6], width),
                padded_row(bits[6:9], width)]
        sum_row, carry_row = csa_rows(aig, *rows)
        for minterm in range(1 << 9):
            assignment = {v: (minterm >> k) & 1
                          for k, v in enumerate(aig.inputs)}
            want = rows_value(aig, rows, assignment)
            got = rows_value(aig, [sum_row, carry_row], assignment)
            assert got == want


class TestColumnMatrix:
    def test_from_rows_and_heights(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        matrix = ColumnMatrix.from_rows([[a, b], [a, FALSE]], 2)
        assert matrix.heights() == [2, 1]
        assert matrix.max_height() == 2

    def test_to_two_rows_requires_reduction(self):
        aig = Aig()
        bits = aig.add_inputs(3)
        matrix = ColumnMatrix(1)
        for bit in bits:
            matrix.add_bit(0, bit)
        with pytest.raises(GeneratorError):
            matrix.to_two_rows()

    def test_false_bits_ignored(self):
        matrix = ColumnMatrix(2)
        matrix.add_bit(0, FALSE)
        assert matrix.heights() == [0, 0]


class TestAccumulators:
    @pytest.mark.parametrize("name", sorted(PPA_BUILDERS))
    def test_reduces_to_two_rows_preserving_sum(self, name):
        aig = Aig()
        a_bits = aig.add_inputs(3, prefix="a")
        b_bits = aig.add_inputs(3, prefix="b")
        rows = simple_ppg(aig, a_bits, b_bits)
        row_a, row_b = PPA_BUILDERS[name](aig, rows)
        for a, b in itertools.product(range(8), range(8)):
            assignment = {}
            for k, bit in enumerate(a_bits):
                assignment[bit // 2] = (a >> k) & 1
            for k, bit in enumerate(b_bits):
                assignment[bit // 2] = (b >> k) & 1
            got = rows_value(aig, [row_a, row_b], assignment)
            assert got == a * b, (name, a, b)

    def test_empty_rows_rejected(self):
        aig = Aig()
        with pytest.raises(GeneratorError):
            PPA_BUILDERS["WT"](aig, [])


class TestFinalAdders:
    @pytest.mark.parametrize("name", sorted(FSA_BUILDERS))
    def test_addition_modulo_width(self, name):
        aig = Aig()
        a_bits = aig.add_inputs(4, prefix="a")
        b_bits = aig.add_inputs(4, prefix="b")
        sums = FSA_BUILDERS[name](aig, a_bits, b_bits)
        assert len(sums) == 4
        for bit in sums:
            aig.add_output(bit)
        for a, b in itertools.product(range(16), range(16)):
            got = outputs_as_int(simulate_words(
                aig, [(a, a_bits), (b, b_bits)]))
            assert got == (a + b) % 16, (name, a, b)

    @pytest.mark.parametrize("name", sorted(FSA_BUILDERS))
    def test_odd_width(self, name):
        aig = Aig()
        a_bits = aig.add_inputs(5, prefix="a")
        b_bits = aig.add_inputs(5, prefix="b")
        sums = FSA_BUILDERS[name](aig, a_bits, b_bits)
        for bit in sums:
            aig.add_output(bit)
        import random

        rng = random.Random(3)
        for _ in range(60):
            a, b = rng.randrange(32), rng.randrange(32)
            got = outputs_as_int(simulate_words(
                aig, [(a, a_bits), (b, b_bits)]))
            assert got == (a + b) % 32, (name, a, b)

    def test_width_mismatch_rejected(self):
        aig = Aig()
        a_bits = aig.add_inputs(3)
        with pytest.raises(GeneratorError):
            FSA_BUILDERS["RC"](aig, a_bits, a_bits[:2])


class TestPrefixNetworks:
    @pytest.mark.parametrize("name", sorted(PREFIX_NETWORKS))
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_prefix_carries(self, name, width):
        """Every prefix network must compute all group generates."""
        aig = Aig()
        a_bits = aig.add_inputs(width, prefix="a")
        b_bits = aig.add_inputs(width, prefix="b")
        g = [aig.and_(x, y) for x, y in zip(a_bits, b_bits)]
        p = [aig.xor_(x, y) for x, y in zip(a_bits, b_bits)]
        prefixes = PREFIX_NETWORKS[name](aig, list(zip(g, p)))
        for i, (g_out, _p_out) in enumerate(prefixes):
            aig.add_output(g_out)
        for a in range(1 << width):
            for b in range(1 << width):
                bits = evaluate_single(
                    aig, [(a >> k) & 1 for k in range(width)]
                    + [(b >> k) & 1 for k in range(width)])
                # group generate of bits 0..i == carry out of slice
                for i, bit in enumerate(bits):
                    mask = (1 << (i + 1)) - 1
                    carry = ((a & mask) + (b & mask)) >> (i + 1)
                    assert bit == carry, (name, width, i, a, b)

    def test_combine_operator(self):
        aig = Aig()
        g1, p1, g0, p0 = aig.add_inputs(4)
        g, p = combine(aig, (g1, p1), (g0, p0))
        aig.add_output(g)
        aig.add_output(p)
        for m in range(16):
            g1v, p1v, g0v, p0v = (m & 1, (m >> 1) & 1, (m >> 2) & 1,
                                  (m >> 3) & 1)
            out = evaluate_single(aig, [g1v, p1v, g0v, p0v])
            assert out[0] == (g1v | (p1v & g0v))
            assert out[1] == (p1v & p0v)

    def test_unknown_network_rejected(self):
        aig = Aig()
        a = aig.add_inputs(2)
        b = aig.add_inputs(0)
        with pytest.raises(GeneratorError):
            prefix_adder(aig, a, a, "XX")


class TestBoothEncoding:
    def test_digit_values(self):
        """Booth digits must recompose the multiplier word."""
        for n in (2, 3, 4, 5, 6):
            aig = Aig()
            a_bits = aig.add_inputs(n)
            digits = booth_digits(aig, a_bits)
            for neg, one, two in digits:
                aig.add_output(neg)
                aig.add_output(one)
                aig.add_output(two)
            for a in range(1 << n):
                bits = evaluate_single(aig, [(a >> k) & 1 for k in range(n)])
                total = 0
                for k in range(len(digits)):
                    neg, one, two = bits[3 * k: 3 * k + 3]
                    magnitude = one + 2 * two
                    assert not (one and two), "one and two exclusive"
                    digit = -magnitude if neg else magnitude
                    total += digit * (4 ** k)
                assert total == a, (n, a)

    def test_rows_sum_to_product(self):
        aig = Aig()
        a_bits = aig.add_inputs(4, prefix="a")
        b_bits = aig.add_inputs(4, prefix="b")
        rows = booth_ppg(aig, a_bits, b_bits)
        for a, b in itertools.product(range(16), range(16)):
            assignment = {}
            for k, bit in enumerate(a_bits):
                assignment[bit // 2] = (a >> k) & 1
            for k, bit in enumerate(b_bits):
                assignment[bit // 2] = (b >> k) & 1
            got = rows_value(aig, rows, assignment) % 256
            assert got == a * b, (a, b)
