"""Tests for architecture naming and fault injection."""

import pytest

from repro.aig.simulate import functionally_equal
from repro.errors import GeneratorError
from repro.genmul import (
    FAULT_KINDS,
    all_architectures,
    describe_architecture,
    format_architecture,
    inject_fault,
    inject_visible_fault,
    parse_architecture,
)


class TestNames:
    @pytest.mark.parametrize("text", [
        "SP-DT-LF", "sp.dt.lf", "SP:DT:LF", "SP o DT o LF", "sp-dt-lf",
    ])
    def test_separator_variants(self, text):
        assert parse_architecture(text) == ("SP", "DT", "LF")

    def test_format_round_trip(self):
        assert format_architecture(*parse_architecture("BP-OS-CU")) == "BP-OS-CU"

    def test_describe(self):
        text = describe_architecture("SP-DT-LF")
        assert "Dadda" in text and "Ladner" in text

    @pytest.mark.parametrize("bad", ["SP-DT", "XX-DT-LF", "SP-XX-LF",
                                     "SP-DT-XX", "SP-DT-LF-RC"])
    def test_rejects_unknown(self, bad):
        with pytest.raises(GeneratorError):
            parse_architecture(bad)

    def test_all_architectures_size(self):
        from repro.genmul import FSA_CODES

        names = all_architectures(ppgs=["SP"], ppas=["AR", "WT"])
        assert len(names) == 2 * len(FSA_CODES)
        assert "SP-AR-RC" in names
        assert "SP-WT-HC" in names


class TestFaults:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_changes_function(self, kind, mult_4x4_array):
        buggy = inject_visible_fault(mult_4x4_array, kind=kind, seed=11)
        assert not functionally_equal(mult_4x4_array, buggy)
        assert buggy.num_inputs == mult_4x4_array.num_inputs
        assert buggy.num_outputs == mult_4x4_array.num_outputs

    def test_unknown_kind_rejected(self, mult_4x4_array):
        with pytest.raises(GeneratorError):
            inject_fault(mult_4x4_array, kind="nonsense")

    def test_invisible_fault_detected(self, mult_4x4_array):
        # injecting at a fixed target may be invisible; the API must
        # report that instead of returning an equivalent circuit
        hits = 0
        for target in list(mult_4x4_array.and_vars())[:10]:
            try:
                buggy = inject_fault(mult_4x4_array, kind="gate-type",
                                     target=target)
            except GeneratorError:
                continue
            hits += 1
            assert not functionally_equal(mult_4x4_array, buggy)
        assert hits > 0

    def test_deterministic_with_seed(self, mult_4x4_array):
        b1 = inject_visible_fault(mult_4x4_array, kind="gate-type", seed=5)
        b2 = inject_visible_fault(mult_4x4_array, kind="gate-type", seed=5)
        from repro.aig.ops import structural_signature

        assert structural_signature(b1) == structural_signature(b2)
