"""Tests for the MAC and squarer datapath units."""

import itertools

import pytest

from repro.aig.simulate import outputs_as_int, simulate_words
from repro.errors import GeneratorError
from repro.genmul.datapath import (
    generate_mac,
    generate_squarer,
    verify_mac,
    verify_squarer,
)


class TestMac:
    @pytest.mark.parametrize("arch", ["SP-DT-RC", "SP-WT-KS", "SP-CP-LF"])
    def test_exhaustive_3x3(self, arch):
        aig = generate_mac(arch, 3, 3)
        a_lits = [2 * v for v in aig.inputs[:3]]
        b_lits = [2 * v for v in aig.inputs[3:6]]
        c_lits = [2 * v for v in aig.inputs[6:]]
        for a, b in itertools.product(range(8), range(8)):
            for c in (0, 1, 17, 63):
                got = outputs_as_int(simulate_words(
                    aig, [(a, a_lits), (b, b_lits), (c, c_lits)]))
                assert got == a * b + c, (arch, a, b, c)

    def test_rectangular_and_custom_acc(self):
        aig = generate_mac("SP-WT-RC", 4, 2, width_acc=3)
        a_lits = [2 * v for v in aig.inputs[:4]]
        b_lits = [2 * v for v in aig.inputs[4:6]]
        c_lits = [2 * v for v in aig.inputs[6:]]
        for a, b, c in itertools.product(range(16), range(4), range(8)):
            got = outputs_as_int(simulate_words(
                aig, [(a, a_lits), (b, b_lits), (c, c_lits)]))
            assert got == a * b + c

    def test_formal_verification(self):
        aig = generate_mac("SP-DT-RC", 4, 4)
        result = verify_mac(aig, 4, 4, monomial_budget=500_000)
        assert result.ok

    def test_buggy_mac_rejected(self):
        from repro.genmul import inject_visible_fault

        aig = generate_mac("SP-DT-RC", 4, 4)
        buggy = inject_visible_fault(aig, seed=3)
        result = verify_mac(buggy, 4, 4, monomial_budget=500_000)
        assert result.status == "buggy"

    def test_booth_rejected(self):
        with pytest.raises(GeneratorError):
            generate_mac("BP-DT-RC", 4)


class TestSquarer:
    @pytest.mark.parametrize("arch", ["SP-DT-RC", "SP-WT-KS"])
    @pytest.mark.parametrize("width", [2, 3, 5, 6])
    def test_exhaustive(self, arch, width):
        aig = generate_squarer(arch, width)
        a_lits = [2 * v for v in aig.inputs]
        for a in range(1 << width):
            got = outputs_as_int(simulate_words(aig, [(a, a_lits)]))
            assert got == a * a, (arch, width, a)

    def test_smaller_than_multiplier(self):
        from repro.genmul import generate_multiplier

        squarer = generate_squarer("SP-DT-RC", 8)
        multiplier = generate_multiplier("SP-DT-RC", 8)
        assert squarer.num_ands < multiplier.num_ands

    def test_formal_verification(self):
        aig = generate_squarer("SP-DT-RC", 5)
        result = verify_squarer(aig, 5, monomial_budget=500_000)
        assert result.ok

    def test_buggy_squarer_rejected(self):
        from repro.genmul import inject_visible_fault

        aig = generate_squarer("SP-WT-KS", 5)
        buggy = inject_visible_fault(aig, seed=11)
        result = verify_squarer(buggy, 5, monomial_budget=500_000)
        assert result.status == "buggy"
