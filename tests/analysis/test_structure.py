"""Tests for the static architecture recognizer and blow-up predictor."""

import dataclasses
import json

import pytest

from repro.analysis.structure import (
    RISK_HIGH_FACTOR,
    ArchitectureReport,
    StageGuess,
    analyze_aig,
    recommend_overrides,
    risk_calibration,
    spearman,
)
from repro.aig.aig import Aig
from repro.core.pipeline import Pipeline, VerifyConfig
from repro.genmul.multiplier import generate_multiplier
from repro.obs.store import RunStore
from repro.opt.scripts import optimize

#: Spot checks spanning every family the recognizer claims; the full
#: 19-design sweep lives in scripts/arch_matrix.py (the CI gate).
SPOT_ZOO = [
    ("SP-AR-RC", 6, ("simple", "array", "ripple")),
    ("SP-AR-KS", 6, ("simple", "array", "lookahead")),
    ("SP-WT-CL", 6, ("simple", "tree", "lookahead")),
    ("SP-DT-RC", 6, ("simple", "tree", "ripple")),
    ("SP-BD-SK", 6, ("simple", "tree", "lookahead")),
    ("BP-WT-RC", 6, ("booth", "tree", "ripple")),
    ("BP-DT-CL", 6, ("booth", "tree", "lookahead")),
]


def analyze(architecture, width, script="none"):
    aig = optimize(generate_multiplier(architecture, width), script)
    return analyze_aig(aig, width_a=width,
                       subject=f"{architecture}-{width}-{script}")


class TestClassification:
    @pytest.mark.parametrize("architecture,width,expected", SPOT_ZOO)
    def test_zoo_labels_match_generator(self, architecture, width,
                                        expected):
        arch = analyze(architecture, width)
        got = (arch.ppg.label, arch.ppa.label, arch.fsa.label)
        assert got == expected
        assert arch.recognized
        assert arch.architecture == "-".join(expected)

    def test_labels_survive_light_optimization(self):
        for script in ("dc2", "resyn3"):
            arch = analyze("SP-AR-RC", 6, script)
            assert (arch.ppg.label, arch.ppa.label, arch.fsa.label) \
                == ("simple", "array", "ripple")

    def test_confidences_bounded(self):
        arch = analyze("SP-WT-CL", 6)
        for guess in arch.stages.values():
            assert 0.0 <= guess.confidence <= 1.0

    def test_regions_are_disjoint_and_labelled(self):
        arch = analyze("SP-AR-RC", 6)
        seen = set()
        for name in ("ppg", "ppa", "fsa"):
            region = set(arch.regions[name])
            assert not (region & seen)
            seen |= region
        assert seen  # something was segmented

    def test_width_inference_from_even_split(self):
        aig = generate_multiplier("SP-AR-RC", 5)
        arch = analyze_aig(aig)  # no width given
        assert arch.width_a == 5
        assert arch.ppg.label == "simple"


class TestDiagnostics:
    def test_rs001_always_present_on_recognition(self):
        arch = analyze("SP-AR-RC", 6)
        codes = [d.code for d in arch.report]
        assert "RS001" in codes

    def test_clean_simple_designs_warning_free(self):
        for architecture in ("SP-AR-RC", "SP-WT-CL", "SP-DT-RC"):
            arch = analyze(architecture, 6)
            assert arch.report.warnings == [], architecture

    def test_booth_flags_high_risk(self):
        arch = analyze("BP-WT-RC", 6)
        assert arch.risk["factor"] >= RISK_HIGH_FACTOR
        assert "RS020" in [d.code for d in arch.report.warnings]

    def test_empty_design_is_inconclusive(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        aig.add_output(a)
        arch = analyze_aig(aig, width_a=1)
        codes = [d.code for d in arch.report]
        assert "RS002" in codes
        assert not arch.recognized
        assert arch.architecture == "unknown-unknown-unknown"

    def test_sarif_export_shape(self):
        arch = analyze("BP-WT-RC", 6)
        sarif = arch.to_sarif()
        assert sarif["version"] == "2.1.0"
        rule_ids = {r["id"]
                    for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert rule_ids <= {"RS001", "RS002", "RS010", "RS011",
                            "RS012", "RS013", "RS020"}
        assert any(res["ruleId"] == "RS020"
                   for res in sarif["runs"][0]["results"])

    def test_json_roundtrip(self, tmp_path):
        arch = analyze("SP-WT-CL", 6)
        path = tmp_path / "arch.json"
        arch.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["architecture"] == "simple-tree-lookahead"
        assert set(payload["stages"]) == {"ppg", "ppa", "fsa"}
        assert payload["risk"]["factor"] == arch.risk["factor"]


class TestRecommendOverrides:
    def _arch(self, factor, recognized=True, confidence=1.0):
        guess = StageGuess("ppg", "simple" if recognized else "unknown",
                           confidence)
        report = analyze("SP-AR-RC", 4).report
        return ArchitectureReport(
            subject="t", width_a=4, width_b=4,
            ppg=guess, ppa=dataclasses.replace(guess, stage="ppa",
                                               label="array"),
            fsa=dataclasses.replace(guess, stage="fsa", label="ripple"),
            regions={}, boundary={}, risk={"factor": factor, "score": 0.0},
            coverage={}, report=report)

    def test_high_risk_deepens_prime_schedule(self):
        overrides = recommend_overrides(self._arch(5.0), VerifyConfig())
        assert overrides["primes"] == 6
        assert overrides["initial_threshold"] == 0.25

    def test_low_risk_drops_extended_rules(self):
        overrides = recommend_overrides(self._arch(1.2), VerifyConfig())
        assert overrides == {"extended_rules": False}

    def test_explicit_user_choice_is_never_overridden(self):
        config = VerifyConfig(primes=2, initial_threshold=0.5)
        assert recommend_overrides(self._arch(5.0), config) == {}

    def test_midband_risk_changes_nothing(self):
        assert recommend_overrides(self._arch(2.0), VerifyConfig()) == {}

    def test_unrecognized_never_detunes(self):
        arch = self._arch(1.2, recognized=False, confidence=0.0)
        assert recommend_overrides(arch, VerifyConfig()) == {}


class TestPipelineAutoTune:
    def test_advisory_lands_in_stats(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        result = Pipeline(VerifyConfig(auto_tune=True)).run(aig)
        assert result.status == "correct"
        advisory = result.stats["autotune"]
        assert advisory["architecture"] == "simple-array-ripple"
        assert advisory["overrides"] == {"extended_rules": False}

    def test_off_by_default(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        result = Pipeline(VerifyConfig()).run(aig)
        assert result.status == "correct"
        assert "autotune" not in result.stats


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_use_average_ranks(self):
        assert spearman([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestRiskCalibration:
    #: Fast designs with well-separated observed peaks: the static risk
    #: score must rank them exactly as the measured peak SP_i does.
    CALIBRATION_SET = [
        ("SP-AR-RC", 4), ("SP-DT-LF", 4), ("SP-AR-RC", 6),
        ("SP-WT-CL", 6), ("SP-DT-KS", 6), ("BP-AR-RC", 4),
    ]

    def test_risk_rank_orders_observed_peaks(self, tmp_path):
        entries = []
        with RunStore(tmp_path / "runs.db") as store:
            for architecture, width in self.CALIBRATION_SET:
                aig = generate_multiplier(architecture, width)
                design = f"{architecture}-{width}"
                arch = analyze_aig(aig, width_a=width, subject=design)
                result = Pipeline(VerifyConfig(width_a=width)).run(aig)
                assert result.status == "correct"
                store.add_run(design, "dyposub", optimization="none",
                              status=result.status,
                              steps=result.stats.get("steps"),
                              max_poly_size=result.stats["max_poly_size"])
                entries.append((design, "none", arch.risk["score"]))
            calibration = risk_calibration(store, entries)
        assert calibration["samples"] == len(self.CALIBRATION_SET)
        assert calibration["spearman"] >= 0.8
        agreement = calibration["agreement"]
        assert agreement["top"] == agreement["count"]
        assert agreement["bottom"] == agreement["count"]

    def test_missing_history_is_skipped(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            store.add_run("known", "dyposub", optimization="none",
                          max_poly_size=10)
            calibration = risk_calibration(
                store, [("known", "none", 1.0), ("absent", "none", 2.0)])
        assert calibration["samples"] == 1
        assert calibration["spearman"] is None
