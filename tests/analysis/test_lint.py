"""Design lint: zero findings on clean designs, 100% on broken ones."""

import pytest

from repro.aig.aiger import read_aag, write_aag
from repro.analysis import lint_aig, lint_design, lint_netlist
from repro.analysis.lint import check_multiplier_interface, infer_widths
from repro.errors import AigFormatError
from repro.gates.netlist import Cell
from repro.genmul.faults import FAULT_KINDS, inject_visible_fault
from repro.genmul.multiplier import generate_multiplier
from repro.opt.scripts import OPTIMIZATIONS, optimize

CLEAN_DESIGNS = [
    ("SP-AR-RC", 4), ("SP-DT-LF", 4), ("SP-WT-CL", 5),
    ("BP-AR-RC", 4), ("SP-OS-KS", 6),
]


class TestCleanDesigns:
    @pytest.mark.parametrize("arch,width", CLEAN_DESIGNS)
    def test_generated_multipliers_have_no_findings(self, arch, width):
        report = lint_design(generate_multiplier(arch, width))
        assert report.clean, report.render()

    @pytest.mark.parametrize("script", sorted(OPTIMIZATIONS))
    def test_every_opt_pass_emits_lint_clean_aigs(self, script):
        # Property: optimization must preserve structural sanity and
        # multiplier behaviour on every script in the registry.
        aig = generate_multiplier("SP-AR-RC", 4)
        report = lint_design(optimize(aig, script))
        assert report.clean, f"{script}: {report.render()}"

    def test_signed_multiplier_probe_is_clean(self):
        report = lint_design(generate_multiplier("SPS-AR-RC", 4))
        assert report.clean, report.render()

    def test_aiger_roundtrip_stays_clean(self, tmp_path):
        aig = generate_multiplier("SP-DT-LF", 4)
        path = tmp_path / "m.aag"
        write_aag(aig, str(path))
        assert lint_design(read_aag(str(path))).clean


class TestFaultDetection:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_fault_kind_is_flagged(self, kind, seed):
        aig = generate_multiplier("SP-AR-RC", 4)
        buggy = inject_visible_fault(aig, kind=kind, seed=seed)
        report = lint_design(buggy)
        assert not report.clean
        assert any(d.code == "RA032" for d in report.errors), report.render()

    @pytest.mark.parametrize("seed", range(4))
    def test_randomly_corrupted_aiger_is_flagged(self, seed):
        import random

        rng = random.Random(seed)
        text = write_aag(generate_multiplier("SP-AR-RC", 4))
        lines = text.splitlines()
        mode = rng.choice(["truncate", "garbage", "out-of-range"])
        body_start = 1
        if mode == "truncate":
            lines = lines[:rng.randrange(body_start, len(lines) // 2)]
        elif mode == "garbage":
            idx = rng.randrange(body_start, len(lines) // 2)
            lines[idx] = "xx yy zz"
        else:
            idx = rng.randrange(body_start, len(lines) // 2)
            lines[idx] = " ".join("99999" for _ in lines[idx].split())
        corrupted = "\n".join(lines) + "\n"
        with pytest.raises(AigFormatError) as excinfo:
            read_aag(corrupted)
        assert excinfo.value.code in ("RA001", "RA002", "RA003", "RA004")
        assert excinfo.value.line is not None


class TestStructuralLint:
    def _mult(self):
        return generate_multiplier("SP-AR-RC", 4)

    def test_constant_fanin_flagged(self):
        aig = self._mult()
        victim = next(iter(aig.and_vars()))
        aig._fanin1[victim] = 1  # literal 1 = constant TRUE
        assert any(d.code == "RA012" for d in lint_aig(aig).errors)

    def test_duplicate_nodes_flagged(self):
        aig = self._mult()
        ands = list(aig.and_vars())
        aig._fanin0[ands[1]] = aig._fanin0[ands[0]]
        aig._fanin1[ands[1]] = aig._fanin1[ands[0]]
        assert any(d.code == "RA013" for d in lint_aig(aig).errors)

    def test_out_of_range_fanin_flagged(self):
        aig = self._mult()
        victim = next(iter(aig.and_vars()))
        aig._fanin0[victim] = 2 * aig.num_vars + 10
        assert any(d.code == "RA014" for d in lint_aig(aig).errors)

    def test_topological_violation_flagged(self):
        aig = self._mult()
        ands = list(aig.and_vars())
        # Make an early node read a later one: a cycle-shaped violation.
        aig._fanin0[ands[0]] = 2 * ands[-1]
        assert any(d.code == "RA015" for d in lint_aig(aig).errors)

    def test_no_outputs_flagged(self):
        aig = self._mult()
        aig._outputs.clear()
        assert any(d.code == "RA034" for d in lint_aig(aig).errors)

    def test_unreachable_nodes_are_info_only(self):
        from repro.aig.aig import Aig

        aig = Aig()
        a = aig.add_input()   # add_input returns the positive literal
        b = aig.add_input()
        lit = aig.add_and(a, b)
        aig.add_and(a, b ^ 1)  # dead node
        aig.add_output(lit)
        report = lint_aig(aig)
        assert report.clean
        assert any(d.code == "RA011" for d in report)


class TestInterface:
    def test_widths_inferred_from_port_names(self):
        aig = generate_multiplier("SP-AR-RC", 4, 3)
        wa, wb, from_names = infer_widths(aig)
        assert (wa, wb, from_names) == (4, 3, True)

    def test_even_split_fallback(self):
        from repro.aig.aig import Aig

        aig = Aig()
        for _ in range(6):
            aig.add_input()
        wa, wb, from_names = infer_widths(aig)
        assert (wa, wb, from_names) == (3, 3, False)

    def test_impossible_split_flagged(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        report, wa, wb = check_multiplier_interface(aig, width_a=20)
        assert wa is None
        assert any(d.code == "RA030" for d in report.errors)

    def test_missing_product_bits_flagged(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        aig._outputs.pop()
        report, wa, wb = check_multiplier_interface(aig)
        assert any(d.code == "RA030" for d in report.errors)


class TestNetlistLint:
    def _mapped(self):
        from repro.opt.techmap import techmap

        return techmap(generate_multiplier("SP-AR-RC", 4))

    def test_clean_mapping_has_no_findings(self):
        assert lint_netlist(self._mapped()).clean

    def test_unknown_cell_flagged(self):
        netlist = self._mapped()
        old = netlist.cells[0]
        netlist.cells[0] = Cell(old.name, "FROBNICATOR", old.output,
                                old.inputs)
        assert any(d.code == "RA022" for d in lint_netlist(netlist).errors)

    def test_multiply_driven_net_flagged(self):
        netlist = self._mapped()
        first = netlist.cells[0]
        netlist.cells.append(Cell("dup", first.cell, first.output,
                                  first.inputs))
        report = lint_netlist(netlist)
        assert any(d.code == "RA021" for d in report.errors)

    def test_undriven_read_flagged(self):
        netlist = self._mapped()
        old = netlist.cells[-1]
        bogus = netlist._next_net + 50
        netlist.cells[-1] = Cell(old.name, old.cell, old.output,
                                 (bogus,) + old.inputs[1:])
        assert any(d.code == "RA025" for d in lint_netlist(netlist).errors)

    def test_arity_mismatch_flagged(self):
        netlist = self._mapped()
        old = netlist.cells[-1]
        netlist.cells[-1] = Cell(old.name, old.cell, old.output,
                                 old.inputs + (old.inputs[0],))
        assert any(d.code == "RA024" for d in lint_netlist(netlist).errors)

    def test_floating_net_is_warning(self):
        netlist = self._mapped()
        netlist.add_cell("AND2", [netlist.input_nets[0],
                                  netlist.input_nets[1]])
        report = lint_netlist(netlist)
        assert not report.errors
        assert any(d.code == "RA023" for d in report.warnings)


class TestVerifierPreflight:
    def test_broken_design_raises_design_lint_error(self):
        from repro.core.verifier import verify_multiplier
        from repro.errors import DesignLintError

        aig = generate_multiplier("SP-AR-RC", 4)
        victim = next(iter(aig.and_vars()))
        aig._fanin0[victim] = 2 * aig.num_vars + 8
        with pytest.raises(DesignLintError) as excinfo:
            verify_multiplier(aig, 4, 4)
        report = excinfo.value.report
        assert report is not None
        assert any(d.code == "RA014" for d in report.errors)

    def test_preflight_can_be_disabled(self):
        from repro.core.verifier import verify_multiplier

        aig = generate_multiplier("SP-AR-RC", 4)
        result = verify_multiplier(aig, 4, 4, preflight=False)
        assert result.ok

    def test_bench_harness_reports_invalid_instead_of_crashing(self):
        from repro.bench.harness import run_method, runtime_cell

        aig = generate_multiplier("SP-AR-RC", 4)
        aig._outputs.clear()
        result = run_method("dyposub", aig, budget=10_000, time_budget=30.0)
        assert result.status == "invalid"
        assert result.stats["diagnostics"]
        assert runtime_cell(result) == "INVALID"
