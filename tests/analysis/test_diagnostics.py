"""Tests for the diagnostics core: codes, reports, export formats."""

import json

import pytest

from repro.analysis import CODES, Diagnostic, DiagnosticReport, Severity
from repro.analysis.diagnostics import report_from_error
from repro.errors import AigFormatError, DesignLintError


class TestCatalogue:
    def test_all_codes_have_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert severity in Severity.ORDER
            assert title
            assert code[:2] in ("RA", "RP", "RS")
            assert code[2:].isdigit()

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="ZZ999", message="nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="RA010", message="x", severity="fatal")

    def test_default_severity_from_catalogue(self):
        assert Diagnostic(code="RA011", message="x").severity == "info"
        assert Diagnostic(code="RA023", message="x").severity == "warning"
        assert Diagnostic(code="RA010", message="x").severity == "error"


class TestDiagnostic:
    def test_render_includes_code_severity_location(self):
        diag = Diagnostic(code="RA014", message="bad fan-in", node=7)
        text = diag.render()
        assert "RA014" in text
        assert "error" in text
        assert "v7" in text
        assert "bad fan-in" in text

    def test_line_location(self):
        diag = Diagnostic(code="RA002", message="truncated", line=4)
        assert "line 4" in diag.render()

    def test_as_dict_drops_empty_locations(self):
        record = Diagnostic(code="RA010", message="m").as_dict()
        assert "node" not in record
        assert "line" not in record
        assert record["code"] == "RA010"


class TestReport:
    def test_verdict_and_findings(self):
        report = DiagnosticReport(subject="d")
        assert report.clean and report.verdict == "clean"
        report.add("RA011", "dead nodes")          # info does not dirty
        assert report.clean
        report.add("RA023", "floating net", wire=3)
        assert not report.clean and report.verdict == "dirty"
        assert len(report.findings) == 1
        report.add("RA021", "double driven", wire=3)
        assert len(report.errors) == 1
        assert len(report.warnings) == 1

    def test_sorted_orders_by_severity(self):
        report = DiagnosticReport()
        report.add("RA011", "note")
        report.add("RA023", "warn")
        report.add("RA010", "err")
        severities = [d.severity for d in report.sorted()]
        assert severities == ["error", "warning", "info"]

    def test_add_splits_context_from_locations(self):
        report = DiagnosticReport()
        diag = report.add("RA014", "m", node=4, literal=99)
        assert diag.node == 4
        assert diag.context == {"literal": 99}

    def test_render_mentions_counts(self):
        report = DiagnosticReport(subject="mult")
        report.add("RA010", "broken")
        text = report.render()
        assert "mult" in text and "1 errors" in text and "RA010" in text

    def test_json_roundtrip(self, tmp_path):
        report = DiagnosticReport(subject="d")
        report.add("RA014", "bad", node=2)
        path = tmp_path / "out.json"
        report.to_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["verdict"] == "dirty"
        assert loaded["diagnostics"][0]["code"] == "RA014"
        assert loaded["diagnostics"][0]["node"] == 2

    def test_sarif_shape(self):
        report = DiagnosticReport(subject="d")
        report.add("RA014", "bad", node=2)
        report.add("RA011", "note")
        sarif = report.to_sarif()
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"RA014", "RA011"}
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["RA014"] == "error"
        assert levels["RA011"] == "note"


class TestReportFromError:
    def test_typed_error_becomes_finding(self):
        error = AigFormatError("truncated", code="RA002", line=7)
        report = report_from_error(error, subject="f.aag")
        assert not report.clean
        diag = report.diagnostics[0]
        assert diag.code == "RA002"
        assert diag.line == 7

    def test_nested_report_is_merged(self):
        inner = DiagnosticReport()
        inner.add("RA014", "bad fan-in", node=3)
        error = DesignLintError("preflight failed", report=inner)
        report = report_from_error(error)
        codes = {d.code for d in report}
        assert "RA000" in codes and "RA014" in codes
