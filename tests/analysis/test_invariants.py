"""Pipeline invariant checkers: clean runs pass, tampering is caught."""

import pytest

from repro.analysis import (
    InvariantMonitor,
    check_component_coverage,
    check_vanishing_rules,
)
from repro.core.verifier import verify_multiplier
from repro.errors import PipelineInvariantError
from repro.genmul.multiplier import generate_multiplier


def _pipeline(arch="SP-AR-RC", width=4):
    """Cleaned AIG plus the partition/rule machinery for one design."""
    from repro.aig.ops import cleanup
    from repro.core.atomic import detect_atomic_blocks
    from repro.core.cones import build_components
    from repro.core.spec import multiplier_specification
    from repro.core.vanishing import rules_from_blocks

    aig = cleanup(generate_multiplier(arch, width))
    spec = multiplier_specification(aig, width, width)
    blocks = detect_atomic_blocks(aig)
    rules = rules_from_blocks(blocks)
    components, rules = build_components(aig, blocks, rules)
    return aig, spec, blocks, components, rules


class TestVerifyWithInvariants:
    @pytest.mark.parametrize("arch,width", [("SP-AR-RC", 4),
                                            ("SP-DT-LF", 4),
                                            ("SP-WT-CL", 5)])
    def test_clean_designs_verify_with_checks_on(self, arch, width):
        aig = generate_multiplier(arch, width)
        result = verify_multiplier(aig, width, width, check_invariants=True)
        assert result.ok
        assert result.stats["invariants"]["checked_commits"] > 0

    def test_static_order_also_passes(self):
        aig = generate_multiplier("SP-AR-RC", 4)
        result = verify_multiplier(aig, 4, 4, method="static",
                                   check_invariants=True)
        assert result.ok

    def test_buggy_design_is_still_reported_buggy(self):
        # Invariants guard the pipeline, not the circuit: a functional
        # fault must surface as status="buggy", not as an RP error.
        from repro.genmul.faults import inject_visible_fault

        aig = inject_visible_fault(generate_multiplier("SP-AR-RC", 4),
                                   kind="gate-type", seed=0)
        result = verify_multiplier(aig, 4, 4, check_invariants=True)
        assert result.status == "buggy"


class TestComponentCoverage:
    def test_clean_partition_passes(self):
        aig, _spec, _blocks, components, _rules = _pipeline()
        covered = check_component_coverage(aig, components)
        assert covered > 0

    def test_missing_component_detected(self):
        aig, _spec, _blocks, components, _rules = _pipeline()
        with pytest.raises(PipelineInvariantError) as excinfo:
            check_component_coverage(aig, components[:-1])
        assert excinfo.value.code == "RP001"

    def test_overlapping_claims_detected(self):
        aig, _spec, _blocks, components, _rules = _pipeline()
        victim, other = components[0], components[1]
        victim.internal = frozenset(victim.internal) | set(other.internal)
        with pytest.raises(PipelineInvariantError):
            check_component_coverage(aig, components)


class TestVanishingRuleTable:
    def test_clean_table_passes(self):
        _aig, _spec, _blocks, _components, rules = _pipeline()
        assert check_vanishing_rules(rules) == len(rules)

    def test_stale_trigger_mask_detected(self):
        _aig, _spec, _blocks, _components, rules = _pipeline()
        if not len(rules):
            pytest.skip("no rules for this design")
        rules._trigger_mask ^= rules._trigger_mask & -rules._trigger_mask
        with pytest.raises(PipelineInvariantError) as excinfo:
            check_vanishing_rules(rules)
        assert excinfo.value.code == "RP002"

    def test_self_reproducing_rhs_detected(self):
        _aig, _spec, _blocks, _components, rules = _pipeline()
        if not rules._by_var:
            pytest.skip("no rules for this design")
        var, entries = next(iter(rules._by_var.items()))
        partner_bit, pair_mask, terms = entries[0]
        entries[0] = (partner_bit, pair_mask, terms + [(1, pair_mask)])
        with pytest.raises(PipelineInvariantError):
            check_vanishing_rules(rules)

    def test_add_rule_rejects_bad_rules_upfront(self):
        from repro.core.vanishing import VanishingRuleSet
        from repro.errors import RuleError

        rules = VanishingRuleSet()
        with pytest.raises(RuleError):
            rules.add_rule(3, 3, [])
        with pytest.raises(ValueError):    # backward compat
            rules.add_rule(3, 4, [(1, (3, 4))])


class TestMonitor:
    def test_signature_mismatch_detected(self):
        aig, spec, _blocks, components, _rules = _pipeline()
        monitor = InvariantMonitor(aig, spec, components, samples=2)
        # Feed a polynomial that is NOT value-equivalent to the spec.
        from repro.poly.polynomial import Polynomial

        wrong = Polynomial.constant(12345)
        # Pick a component with no unsubstituted consumers (a sink).
        sink = next(c for c in components
                    if not monitor._consumers[c.index])
        with pytest.raises(PipelineInvariantError) as excinfo:
            monitor.on_commit(sink.index, sink, wrong)
        assert excinfo.value.code == "RP004"

    def test_double_substitution_detected(self):
        aig, spec, _blocks, components, _rules = _pipeline()
        monitor = InvariantMonitor(aig, spec, components, samples=0)
        sink = next(c for c in components
                    if not monitor._consumers[c.index])
        from repro.poly.polynomial import Polynomial

        monitor.on_commit(sink.index, sink, Polynomial.constant(0))
        with pytest.raises(PipelineInvariantError) as excinfo:
            monitor.on_commit(sink.index, sink, Polynomial.constant(0))
        assert excinfo.value.code == "RP003"

    def test_out_of_order_substitution_detected(self):
        aig, spec, _blocks, components, _rules = _pipeline()
        monitor = InvariantMonitor(aig, spec, components, samples=0)
        producer = next(c for c in components
                        if monitor._consumers[c.index])
        from repro.poly.polynomial import Polynomial

        with pytest.raises(PipelineInvariantError) as excinfo:
            monitor.on_commit(producer.index, producer,
                              Polynomial.constant(0))
        assert excinfo.value.code == "RP003"


class TestBlockCoverage:
    def test_clean_blocks_report_stats(self):
        from repro.core.atomic import block_coverage

        aig, _spec, blocks, _components, _rules = _pipeline()
        stats = block_coverage(aig, blocks)
        assert stats["blocks"] == len(blocks)
        assert 0 < stats["covered"] <= stats["ands"]

    def test_overlapping_blocks_detected(self):
        from repro.core.atomic import block_coverage

        aig, _spec, blocks, _components, _rules = _pipeline()
        if len(blocks) < 2:
            pytest.skip("need two blocks")
        doubled = list(blocks) + [blocks[0]]
        with pytest.raises(PipelineInvariantError):
            block_coverage(aig, doubled)
