"""The shared persistence API: verdict records and the certificate
cache semantics (what may be replayed, what must never be)."""

import pytest

from repro.core.pipeline import Pipeline, VerifyConfig
from repro.genmul.multiplier import generate_multiplier
from repro.obs.store import RunStore
from repro.service.fingerprint import design_fingerprint
from repro.service.persistence import (
    CACHEABLE_STATUSES,
    cache_lookup,
    cache_store,
    ingest_verify_records,
    result_from_record,
    verdict_record,
)


@pytest.fixture(scope="module")
def verified():
    aig = generate_multiplier("SP-AR-RC", 4)
    result = Pipeline(VerifyConfig(record_trace=True,
                                   record_certificate=True)).run(aig)
    return aig, result


class TestVerdictRecord:
    def test_shape(self, verified):
        aig, result = verified
        record = verdict_record(result, input_path="m.aag")
        assert record["status"] == "correct"
        assert record["cache_hit"] is False
        assert record["input"] == "m.aag"
        assert record["summary"] == result.summary()
        assert record["timed_out"] is False
        assert "certificate" in record

    def test_round_trip_through_result(self, verified):
        aig, result = verified
        record = verdict_record(result)
        replayed = result_from_record(record)
        assert replayed.status == result.status
        assert replayed.method == result.method
        assert replayed.seconds == record["seconds"]
        assert replayed.sizes() == result.sizes()
        # the one-liner agrees apart from the (rounded) wall time
        assert replayed.summary().split(" in ")[0] == \
            result.summary().split(" in ")[0]


class TestCacheSemantics:
    def test_only_final_verdicts_are_cacheable(self):
        assert CACHEABLE_STATUSES == {"correct", "buggy"}

    def test_store_then_lookup(self, verified):
        aig, result = verified
        fingerprint = design_fingerprint(aig)
        record = verdict_record(result)
        with RunStore() as store:
            assert cache_store(store, fingerprint, record, design="m")
            hit = cache_lookup(store, fingerprint)
        assert hit["cache_hit"] is True
        assert hit["fingerprint"] == fingerprint
        assert hit["cache_hits"] == 1
        assert hit["status"] == record["status"]
        # the payload fields replay exactly
        for key in ("method", "seconds", "stats", "summary",
                    "certificate"):
            assert hit[key] == record[key], key

    def test_miss_returns_none(self):
        with RunStore() as store:
            assert cache_lookup(store, "0" * 64) is None

    @pytest.mark.parametrize("status", ["timeout", "invalid", "unknown"])
    def test_non_final_statuses_are_refused(self, status):
        with RunStore() as store:
            assert not cache_store(store, "a" * 64, {"status": status})
            assert cache_lookup(store, "a" * 64) is None

    def test_replayed_hit_is_never_recached(self, verified):
        aig, result = verified
        fingerprint = design_fingerprint(aig)
        with RunStore() as store:
            cache_store(store, fingerprint, verdict_record(result))
            hit = cache_lookup(store, fingerprint)
            # a cache-hit record must not overwrite/extend the cache
            assert not cache_store(store, "b" * 64, hit)

    def test_first_writer_wins(self, verified):
        aig, result = verified
        fingerprint = design_fingerprint(aig)
        record = verdict_record(result)
        with RunStore() as store:
            assert cache_store(store, fingerprint, record)
            assert not cache_store(store, fingerprint, record)
            assert len(store.certificates()) == 1

    def test_lookup_without_counting(self, verified):
        aig, result = verified
        fingerprint = design_fingerprint(aig)
        with RunStore() as store:
            cache_store(store, fingerprint, verdict_record(result))
            cache_lookup(store, fingerprint, count_hit=False)
            hit = cache_lookup(store, fingerprint)
            assert hit["cache_hits"] == 1


class TestIngest:
    def test_cache_hits_are_not_reingested(self, verified, tmp_path):
        aig, result = verified
        db = str(tmp_path / "runs.db")
        record = verdict_record(result, input_path="m.aag")
        ingest_verify_records([record], db)
        replay = dict(record)
        replay["cache_hit"] = True
        ingest_verify_records([replay, record], db)
        with RunStore(db) as store:
            assert len(store) == 2  # the replay was skipped

    def test_broken_db_is_best_effort(self, verified, tmp_path):
        aig, result = verified
        bad = tmp_path / "not-a-dir" / "x" / "runs.db"
        record = verdict_record(result, input_path="m.aag")
        assert ingest_verify_records([record], str(bad)) is None
