"""Cache-key soundness: the fingerprint must collapse exactly the
designs that are interchangeable as verification subjects.

Two directions, both load-bearing for the certificate cache:

* **no missed hits** — any isomorphic rewrite (renumbered variables,
  permuted AND pins, different topological insertion order) of the same
  circuit maps to the same fingerprint, so a resubmission is answered
  in O(hash);
* **no false hits** — every functional change (any injected fault
  kind), any interface change (widths, signedness, output order) maps
  to a different fingerprint, so a buggy variant can never replay a
  clean certificate.
"""

import random

import pytest

from repro.aig.aig import Aig, lit_neg, lit_var
from repro.aig.simulate import exhaustive_equal
from repro.genmul.faults import FAULT_KINDS, inject_visible_fault
from repro.genmul.multiplier import generate_multiplier
from repro.service.fingerprint import design_fingerprint, resolve_widths


def shuffled_copy(aig, seed=0):
    """An isomorphic rebuild: same circuit, different variable
    numbering (randomized topological insertion order) and swapped AND
    pin order.  The interface (input/output order) is preserved."""
    rng = random.Random(seed)
    out = Aig(aig.name)
    mapping = {0: 0}
    for var, name in zip(aig.inputs, aig.input_names):
        mapping[var] = lit_var(out.add_input(name))
    remaining = list(aig.and_vars())
    ready = []
    while remaining or ready:
        ready.extend(v for v in remaining
                     if all(lit_var(f) in mapping for f in aig.fanins(v)))
        remaining = [v for v in remaining if v not in set(ready)]
        pick = ready.pop(rng.randrange(len(ready)))
        f0, f1 = aig.fanins(pick)

        def relit(lit):
            new = 2 * mapping[lit_var(lit)]
            return lit_neg(new) if lit & 1 else new

        mapping[pick] = lit_var(out.add_and(relit(f1), relit(f0)))
    for lit, name in zip(aig.outputs, aig.output_names):
        new = 2 * mapping[lit_var(lit)]
        out.add_output(lit_neg(new) if lit & 1 else new, name)
    return out


@pytest.fixture(scope="module")
def mult():
    return generate_multiplier("SP-AR-RC", 4)


class TestIsomorphismInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_shuffled_copy_is_equivalent_and_hits(self, mult, seed):
        other = shuffled_copy(mult, seed=seed)
        assert exhaustive_equal(mult, other)
        assert design_fingerprint(other) == design_fingerprint(mult)

    def test_shuffle_actually_renumbers(self, mult):
        # the helper must exercise the invariance, not copy verbatim
        other = shuffled_copy(mult, seed=1)
        assert [mult.fanins(v) for v in mult.and_vars()] != \
            [other.fanins(v) for v in other.and_vars()]

    def test_stable_across_processes(self, mult):
        # sha256 of canonical structure: no salt, no id()s, no dict order
        fp = design_fingerprint(mult)
        assert fp == design_fingerprint(generate_multiplier("SP-AR-RC", 4))
        assert len(fp) == 64 and int(fp, 16) >= 0


class TestInvalidation:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_fault_kind_misses(self, mult, kind, seed):
        buggy = inject_visible_fault(mult, kind=kind, seed=seed)
        assert design_fingerprint(buggy) != design_fingerprint(mult)

    def test_architecture_misses(self, mult):
        other = generate_multiplier("SP-DT-LF", 4)
        assert design_fingerprint(other) != design_fingerprint(mult)

    def test_declared_widths_distinguish(self):
        aig = generate_multiplier("SP-AR-RC", 4, 4)
        # same graph, different claimed operand split
        base = design_fingerprint(aig, 4, 4)
        assert design_fingerprint(aig, 2, 6) != base

    def test_signedness_distinguishes(self, mult):
        assert design_fingerprint(mult, signed=True) != \
            design_fingerprint(mult, signed=False)

    def test_output_negation_misses(self, mult):
        other = shuffled_copy(mult, seed=0)
        other.set_output(0, lit_neg(other.outputs[0]))
        assert design_fingerprint(other) != design_fingerprint(mult)


class TestWidths:
    def test_half_split_default(self, mult):
        assert resolve_widths(mult, None, None) == (4, 4)

    def test_explicit_widths(self, mult):
        assert resolve_widths(mult, 3, None) == (3, 5)
        assert resolve_widths(mult, 3, 5) == (3, 5)

    def test_odd_inputs_need_widths(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.and_(a, aig.and_(b, c)))
        with pytest.raises(ValueError):
            resolve_widths(aig, None, None)
        assert resolve_widths(aig, 1, None) == (1, 2)
