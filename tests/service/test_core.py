"""VerificationService: submission, cache consult, dispatch, events.

These run the service inline (``use_processes=False``) — the HTTP and
pool layers ride the exact same code path and have their own tests; the
CI smoke script exercises the full process-pool stack.
"""

import pytest

from repro.aig.aiger import write_aag
from repro.genmul.faults import inject_visible_fault
from repro.genmul.multiplier import generate_multiplier
from repro.service.core import (
    SubmitError,
    VerificationService,
    config_from_options,
)


@pytest.fixture(scope="module")
def aag_text():
    return write_aag(generate_multiplier("SP-AR-RC", 4))


@pytest.fixture(scope="module")
def buggy_text():
    aig = generate_multiplier("SP-AR-RC", 4)
    return write_aag(inject_visible_fault(aig, kind="gate-type", seed=0))


@pytest.fixture()
def service(tmp_path):
    svc = VerificationService(db=str(tmp_path / "runs.db"), workers=1,
                              use_processes=False)
    svc.start()
    yield svc
    svc.shutdown()


def _wait(service, job, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while not job.finished:
        if time.monotonic() > deadline:
            raise AssertionError(f"{job.id} still {job.state}")
        time.sleep(0.02)
    return job


class TestOptions:
    def test_valid_options_build_a_config(self):
        config = config_from_options({"width_a": 4, "signed": True,
                                      "monomial_budget": 1000})
        assert config.width_a == 4
        assert config.signed is True
        assert config.monomial_budget == 1000

    def test_unknown_option_is_refused(self):
        with pytest.raises(SubmitError, match="unknown job option"):
            config_from_options({"widht_a": 4})

    def test_bad_value_is_refused(self):
        with pytest.raises(SubmitError, match="bad job options"):
            config_from_options({"method": "nonesuch"})


class TestSubmit:
    def test_clean_design_verifies(self, service, aag_text):
        job = _wait(service, service.submit("m.aag", aag_text))
        assert job.state == "done"
        assert job.record["status"] == "correct"
        assert job.record["cache_hit"] is False
        assert job.record["fingerprint"]
        assert job.source is None  # AAG text released after the run

    def test_buggy_design_has_counterexample(self, service, buggy_text):
        job = _wait(service, service.submit("buggy.aag", buggy_text))
        assert job.record["status"] == "buggy"
        cex = job.record["counterexample"]
        assert cex["a"] is not None and cex["b"] is not None

    def test_garbage_is_a_submit_error(self, service):
        with pytest.raises(SubmitError, match="unparseable"):
            service.submit("x.aag", "this is not an aag")

    def test_bad_options_refused_before_queueing(self, service, aag_text):
        with pytest.raises(SubmitError):
            service.submit("m.aag", aag_text, options={"bogus": 1})
        assert service.jobs == {}

    def test_event_stream_brackets_the_run(self, service, aag_text):
        job = _wait(service, service.submit("m.aag", aag_text))
        kinds = [e["ev"] for e in job.events]
        assert kinds[0] == "submitted"
        assert "task_begin" in kinds and "task_end" in kinds
        assert "run_begin" in kinds and "run_end" in kinds


class TestCache:
    def test_resubmission_is_answered_at_submit_time(self, service,
                                                     aag_text):
        first = _wait(service, service.submit("m.aag", aag_text))
        assert first.record["cache_hit"] is False
        second = service.submit("again.aag", aag_text)
        # no _wait: a cache hit completes inside submit()
        assert second.finished and second.state == "done"
        assert second.record["cache_hit"] is True
        assert second.record["status"] == "correct"
        assert second.record["fingerprint"] == \
            first.record["fingerprint"]
        assert [e["ev"] for e in second.events] == \
            ["submitted", "cache_hit"]
        assert service.cache_hits == 1

    def test_no_cache_forces_a_fresh_run(self, service, aag_text):
        _wait(service, service.submit("m.aag", aag_text))
        fresh = _wait(service, service.submit("again.aag", aag_text,
                                              use_cache=False))
        assert fresh.record["cache_hit"] is False

    def test_cache_survives_service_restart(self, tmp_path, aag_text):
        db = str(tmp_path / "shared.db")
        first = VerificationService(db=db, workers=1,
                                    use_processes=False).start()
        _wait(first, first.submit("m.aag", aag_text))
        first.shutdown()
        second = VerificationService(db=db, workers=1,
                                     use_processes=False).start()
        try:
            job = second.submit("m.aag", aag_text)
            assert job.finished and job.record["cache_hit"] is True
        finally:
            second.shutdown()

    def test_buggy_variant_misses_the_clean_certificate(
            self, service, aag_text, buggy_text):
        clean = _wait(service, service.submit("m.aag", aag_text))
        buggy = _wait(service, service.submit("buggy.aag", buggy_text))
        assert buggy.record["cache_hit"] is False
        assert buggy.record["status"] == "buggy"
        assert buggy.record["fingerprint"] != clean.record["fingerprint"]


class TestQueries:
    def test_stats_and_listing(self, service, aag_text):
        _wait(service, service.submit("m.aag", aag_text))
        service.submit("again.aag", aag_text)  # cache hit
        stats = service.stats()
        assert stats["jobs"]["done"] == 2
        assert stats["cache_hits"] == 1
        assert stats["certificates"] == 1
        assert stats["mode"] == "inline"
        rows = service.list_jobs()
        assert [row["id"] for row in rows] == ["job-0001", "job-0002"]
        assert rows[1]["cache_hit"] is True

    def test_priority_orders_queued_jobs(self, tmp_path, aag_text,
                                         buggy_text):
        # no started service: jobs stack up in the queue unserved
        svc = VerificationService(db=None, workers=1,
                                  use_processes=False)
        low = svc.submit("low.aag", aag_text, priority=9)
        high = svc.submit("high.aag", buggy_text, priority=1)
        assert svc.queue.get().id == high.id
        assert svc.queue.get().id == low.id
