"""The asyncio HTTP front end + blocking client, over a real socket.

One module-scoped server (inline workers, ephemeral port) serves every
test; the final test shuts it down through the API and asserts the
thread exits — which is the clean-shutdown check itself.
"""

import threading

import pytest

from repro.aig.aiger import write_aag
from repro.genmul.faults import inject_visible_fault
from repro.genmul.multiplier import generate_multiplier
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import VerificationService
from repro.service.server import run_server


@pytest.fixture(scope="module")
def aag_text():
    return write_aag(generate_multiplier("SP-AR-RC", 4))


@pytest.fixture(scope="module")
def buggy_text():
    aig = generate_multiplier("SP-AR-RC", 4)
    return write_aag(inject_visible_fault(aig, kind="wrong-wire", seed=1))


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    db = str(tmp_path_factory.mktemp("server") / "runs.db")
    service = VerificationService(db=db, workers=1, use_processes=False)
    box = {}
    ready = threading.Event()

    def on_ready(server):
        box["port"] = server.port
        ready.set()

    thread = threading.Thread(
        target=run_server, args=(service,),
        kwargs={"port": 0, "ready": on_ready}, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "server did not come up"
    client = ServiceClient(port=box["port"])
    yield client, thread
    if thread.is_alive():
        client.shutdown()
        thread.join(timeout=30)


def test_health(served):
    client, _ = served
    assert client.health()["ok"] is True


def test_submit_verify_resubmit_cache_hit(served, aag_text):
    client, _ = served
    first = client.submit(aag_text, design="m.aag")
    assert first["state"] in ("queued", "running", "done")
    done = client.wait(first["id"], timeout=120)
    assert done["record"]["status"] == "correct"
    assert done["record"]["cache_hit"] is False
    # the isomorphic resubmission completes inside the POST
    again = client.submit(aag_text, design="again.aag")
    assert again["state"] == "done"
    assert again["record"]["cache_hit"] is True
    assert again["record"]["fingerprint"] == \
        done["record"]["fingerprint"]


def test_buggy_design_returns_counterexample(served, buggy_text):
    client, _ = served
    job = client.wait(client.submit(buggy_text, design="buggy.aag")["id"],
                      timeout=120)
    assert job["record"]["status"] == "buggy"
    cex = job["record"]["counterexample"]
    assert cex["a"] is not None and cex["b"] is not None


def test_job_listing_and_events(served):
    client, _ = served
    rows = client.jobs()
    assert rows and all("record" not in row for row in rows)
    events = client.events(rows[0]["id"])
    assert events[0]["ev"] == "submitted"
    assert any(e["ev"] == "run_end" for e in events)


def test_stats_counts_cache_hits(served):
    client, _ = served
    stats = client.stats()
    assert stats["cache_hits"] >= 1
    assert stats["certificates"] >= 1
    assert stats["jobs"]["failed"] == 0


def test_error_statuses(served):
    client, _ = served
    with pytest.raises(ServiceError) as exc:
        client.submit("not an aag at all", design="junk")
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client.job("job-9999")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.request("GET", "/nonesuch")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.request("PUT", "/jobs")
    assert exc.value.status == 405
    with pytest.raises(ServiceError) as exc:
        client.request("POST", "/jobs", {"design": "no-aag-field"})
    assert exc.value.status == 400


def test_zz_shutdown_is_clean(served):
    # named to sort last: kills the module's server
    client, thread = served
    assert client.shutdown()["stopping"] is True
    thread.join(timeout=30)
    assert not thread.is_alive()
    with pytest.raises(OSError):
        client.health()
