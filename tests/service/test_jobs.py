"""Job records and the priority queue."""

import threading

import pytest

from repro.service.jobs import DEFAULT_PRIORITY, Job, JobQueue


def _job(job_id, priority=DEFAULT_PRIORITY):
    return Job(job_id, f"{job_id}.aag", "aag 0 0 0 0 0\n",
               priority=priority)


class TestJob:
    def test_fresh_job_shape(self):
        job = _job("job-0001", priority=3)
        assert job.state == "queued"
        assert not job.finished
        info = job.as_dict()
        assert info["id"] == "job-0001"
        assert info["priority"] == 3
        assert "record" not in info and "status" not in info

    def test_listing_shape_hides_record(self):
        job = _job("job-0002")
        job.state = "done"
        job.record = {"status": "correct", "cache_hit": True}
        assert job.finished
        listing = job.as_dict(record=False)
        assert listing["status"] == "correct"
        assert listing["cache_hit"] is True
        assert "record" not in listing
        assert job.as_dict()["record"]["status"] == "correct"


class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue()
        first = _job("a", priority=5)
        second = _job("b", priority=5)
        urgent = _job("c", priority=1)
        queue.put(first)
        queue.put(second)
        queue.put(urgent)
        assert [queue.get().id for _ in range(3)] == ["c", "a", "b"]

    def test_get_timeout_returns_none(self):
        assert JobQueue().get(timeout=0.01) is None

    def test_close_wakes_blocked_getter(self):
        queue = JobQueue()
        got = []
        thread = threading.Thread(target=lambda: got.append(queue.get()))
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]

    def test_closed_queue_refuses_jobs(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put(_job("x"))

    def test_len_tracks_waiting_jobs(self):
        queue = JobQueue()
        assert len(queue) == 0
        queue.put(_job("a"))
        assert len(queue) == 1
        queue.get()
        assert len(queue) == 0
