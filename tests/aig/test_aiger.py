"""Tests for AIGER ASCII I/O."""

import pytest

from repro.aig.aig import Aig
from repro.aig.aiger import read_aag, write_aag
from repro.aig.simulate import exhaustive_equal
from repro.errors import AigError


class TestRoundTrip:
    def test_small_round_trip(self, mult_4x4_array):
        text = write_aag(mult_4x4_array)
        back = read_aag(text)
        assert exhaustive_equal(mult_4x4_array, back)
        assert back.input_names == mult_4x4_array.input_names
        assert back.output_names == mult_4x4_array.output_names

    def test_file_round_trip(self, tmp_path, mult_4x4_dadda):
        path = tmp_path / "m.aag"
        write_aag(mult_4x4_dadda, str(path))
        back = read_aag(str(path))
        assert exhaustive_equal(mult_4x4_dadda, back)

    def test_booth_round_trip(self, mult_4x4_booth):
        back = read_aag(write_aag(mult_4x4_booth))
        assert exhaustive_equal(mult_4x4_booth, back)

    def test_constant_and_input_outputs(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output(0, "zero")
        aig.add_output(1, "one")
        aig.add_output(a, "ident")
        aig.add_output(a ^ 1, "inv")
        back = read_aag(write_aag(aig))
        assert exhaustive_equal(aig, back)


class TestHeader:
    def test_header_counts(self, mult_4x4_array):
        header = write_aag(mult_4x4_array).splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == 8
        assert int(header[4]) == 8
        assert int(header[5]) == mult_4x4_array.num_ands

    def test_rejects_garbage(self):
        with pytest.raises(AigError):
            read_aag("not an aig\n")

    def test_rejects_latches(self):
        with pytest.raises(AigError):
            read_aag("aag 1 0 1 0 0\n2 3\n")

    def test_rejects_malformed_header(self):
        with pytest.raises(AigError):
            read_aag("aag 1 2\n")

    def test_rejects_undefined_reference(self):
        with pytest.raises(AigError):
            read_aag("aag 3 1 0 1 1\n2\n6\n6 2 99\n")


class TestExternalForm:
    def test_parse_known_text(self):
        # y = a & !b
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 y\n"
        aig = read_aag(text)
        from repro.aig.simulate import evaluate_single

        assert evaluate_single(aig, [1, 0]) == [1]
        assert evaluate_single(aig, [1, 1]) == [0]
        assert aig.input_names == ["a", "b"]
        assert aig.output_names == ["y"]
