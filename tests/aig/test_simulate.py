"""Tests for bit-parallel AIG simulation."""

import pytest

from repro.aig.aig import Aig
from repro.aig.simulate import (
    evaluate_single,
    exhaustive_equal,
    exhaustive_truth_tables,
    functionally_equal,
    outputs_as_int,
    random_patterns,
    simulate,
    simulate_words,
)
from repro.errors import AigError


@pytest.fixture()
def xor_aig():
    aig = Aig()
    a, b = aig.add_inputs(2)
    aig.add_output(aig.xor_(a, b), "x")
    return aig


class TestSimulate:
    def test_single_patterns(self, xor_aig):
        assert evaluate_single(xor_aig, [0, 0]) == [0]
        assert evaluate_single(xor_aig, [1, 0]) == [1]
        assert evaluate_single(xor_aig, [0, 1]) == [1]
        assert evaluate_single(xor_aig, [1, 1]) == [0]

    def test_bit_parallel_matches_single(self, xor_aig):
        # patterns packed as 4-wide vectors: a=0b0101, b=0b0011
        out = simulate(xor_aig, [0b0101, 0b0011], width=4)
        assert out == [0b0110]

    def test_dict_input_form(self, xor_aig):
        a_var, b_var = xor_aig.inputs
        out = simulate(xor_aig, {a_var: 1, b_var: 0}, width=1)
        assert out == [1]

    def test_wrong_arity_rejected(self, xor_aig):
        with pytest.raises(AigError):
            simulate(xor_aig, [1], width=1)

    def test_mask_applied(self, xor_aig):
        out = simulate(xor_aig, [0b1111, 0b0000], width=2)
        assert out == [0b11]


class TestWords:
    def test_simulate_words(self, mult_4x4_array):
        a_lits = [2 * v for v in mult_4x4_array.inputs[:4]]
        b_lits = [2 * v for v in mult_4x4_array.inputs[4:]]
        bits = simulate_words(mult_4x4_array, [(5, a_lits), (7, b_lits)])
        assert outputs_as_int(bits) == 35

    def test_outputs_as_int(self):
        assert outputs_as_int([1, 0, 1]) == 5
        assert outputs_as_int([]) == 0


class TestEquivalence:
    def test_exhaustive_equal_positive(self, xor_aig):
        other = Aig()
        a, b = other.add_inputs(2)
        # a ^ b via (a|b) & !(a&b)
        other.add_output(other.and_(other.or_(a, b),
                                    other.nand_(a, b)))
        assert exhaustive_equal(xor_aig, other)
        assert functionally_equal(xor_aig, other)

    def test_exhaustive_equal_negative(self, xor_aig):
        other = Aig()
        a, b = other.add_inputs(2)
        other.add_output(other.or_(a, b))
        assert not exhaustive_equal(xor_aig, other)
        assert not functionally_equal(xor_aig, other)

    def test_interface_mismatch(self, xor_aig):
        other = Aig()
        other.add_input()
        other.add_output(0)
        assert not functionally_equal(xor_aig, other)

    def test_exhaustive_limit(self):
        aig = Aig()
        aig.add_inputs(21)
        aig.add_output(0)
        with pytest.raises(AigError):
            exhaustive_equal(aig, aig)

    def test_random_patterns_deterministic(self):
        assert random_patterns(4, 64, seed=1) == random_patterns(4, 64, seed=1)
        assert random_patterns(4, 64, seed=1) != random_patterns(4, 64, seed=2)


class TestTruthTables:
    def test_exhaustive_truth_tables(self, xor_aig):
        assert exhaustive_truth_tables(xor_aig) == [0b0110]

    def test_constant_outputs(self):
        aig = Aig()
        aig.add_inputs(2)
        aig.add_output(1)
        aig.add_output(0)
        assert exhaustive_truth_tables(aig) == [0b1111, 0b0000]
