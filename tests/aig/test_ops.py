"""Tests for structural AIG operations (cleanup, cones, MFFC, ...)."""

import pytest

from repro.aig.aig import Aig, lit_neg, lit_var
from repro.aig.ops import (
    check_acyclic,
    cleanup,
    cone_vars,
    copy_aig,
    fanout_map,
    mffc,
    reachable_vars,
    structural_signature,
    transitive_fanin_support,
)
from repro.aig.simulate import exhaustive_equal


@pytest.fixture()
def diamond():
    """a&b feeding two consumers plus a dead node."""
    aig = Aig()
    a, b, c = aig.add_inputs(3)
    ab = aig.add_and(a, b)
    left = aig.add_and(ab, c)
    right = aig.add_and(ab, lit_neg(c))
    dead = aig.add_and(a, c)
    aig.add_output(left)
    aig.add_output(right)
    return aig, {"ab": ab, "left": left, "right": right, "dead": dead}


class TestCleanup:
    def test_removes_dead_nodes(self, diamond):
        aig, nodes = diamond
        before = aig.num_ands
        clean = cleanup(aig)
        assert clean.num_ands == before - 1
        assert exhaustive_equal(aig, clean)

    def test_keeps_interface(self, diamond):
        aig, _ = diamond
        clean = cleanup(aig)
        assert clean.num_inputs == aig.num_inputs
        assert clean.num_outputs == aig.num_outputs
        assert clean.input_names == aig.input_names
        assert clean.output_names == aig.output_names

    def test_idempotent(self, diamond):
        aig, _ = diamond
        once = cleanup(aig)
        twice = cleanup(once)
        assert structural_signature(once) == structural_signature(twice)

    def test_copy_preserves_function(self, mult_4x4_array):
        assert exhaustive_equal(mult_4x4_array, copy_aig(mult_4x4_array))

    def test_constant_output(self):
        aig = Aig()
        a = aig.add_input()
        aig.add_output(0)
        aig.add_output(1)
        aig.add_output(a)
        clean = cleanup(aig)
        assert clean.outputs[:2] == [0, 1]


class TestReachability:
    def test_reachable_vars(self, diamond):
        aig, nodes = diamond
        reach = reachable_vars(aig)
        assert lit_var(nodes["dead"]) not in reach
        assert lit_var(nodes["ab"]) in reach

    def test_cone_vars_bounded(self, diamond):
        aig, nodes = diamond
        left_var = lit_var(nodes["left"])
        ab_var = lit_var(nodes["ab"])
        cone = cone_vars(aig, left_var, leaves={ab_var})
        assert cone == {left_var}
        cone_full = cone_vars(aig, left_var, leaves=set())
        assert cone_full == {left_var, ab_var}

    def test_transitive_support(self, diamond):
        aig, nodes = diamond
        support = transitive_fanin_support(aig, lit_var(nodes["left"]))
        assert support == set(aig.inputs)


class TestFanoutAndMffc:
    def test_fanout_map(self, diamond):
        aig, nodes = diamond
        consumers, po_refs = fanout_map(aig)
        ab_var = lit_var(nodes["ab"])
        assert sorted(consumers[ab_var]) == sorted(
            [lit_var(nodes["left"]), lit_var(nodes["right"])])
        assert po_refs[lit_var(nodes["left"])] == 1

    def test_mffc_excludes_shared(self, diamond):
        aig, nodes = diamond
        cone = mffc(aig, lit_var(nodes["left"]))
        # ab is shared with `right`, so only `left` itself dies
        assert cone == {lit_var(nodes["left"])}

    def test_mffc_includes_private_chain(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_output(abc)
        cone = mffc(aig, lit_var(abc))
        assert cone == {lit_var(ab), lit_var(abc)}


class TestInvariants:
    def test_acyclic_check(self, mult_4x4_dadda):
        assert check_acyclic(mult_4x4_dadda)

    def test_signature_differs_on_function_change(self):
        a1 = Aig()
        x, y = a1.add_inputs(2)
        a1.add_output(a1.and_(x, y))
        a2 = Aig()
        x, y = a2.add_inputs(2)
        a2.add_output(a2.or_(x, y))
        assert structural_signature(a1) != structural_signature(a2)
