"""Property-based tests (hypothesis) on random AIGs.

A random-AIG strategy drives the structural passes: cleanup, balance,
xor-balance, refactor/rewrite and the techmap round trip must preserve
function on arbitrary (not just arithmetic) circuits.
"""

from hypothesis import given, settings, strategies as st

from repro.aig.aig import Aig
from repro.aig.ops import check_acyclic, cleanup
from repro.aig.simulate import exhaustive_truth_tables
from repro.opt.balance import balance
from repro.opt.refactor import refactor, rewrite
from repro.opt.xor_balance import xor_balance


@st.composite
def random_aigs(draw, max_inputs=5, max_nodes=24, max_outputs=4):
    num_inputs = draw(st.integers(2, max_inputs))
    num_nodes = draw(st.integers(1, max_nodes))
    aig = Aig("random")
    literals = list(aig.add_inputs(num_inputs))
    for _ in range(num_nodes):
        a = draw(st.sampled_from(literals))
        b = draw(st.sampled_from(literals))
        neg_a = draw(st.booleans())
        neg_b = draw(st.booleans())
        literals.append(aig.add_and(a ^ neg_a, b ^ neg_b))
    num_outputs = draw(st.integers(1, max_outputs))
    for _ in range(num_outputs):
        out = draw(st.sampled_from(literals))
        aig.add_output(out ^ draw(st.booleans()))
    return aig


@given(random_aigs())
@settings(max_examples=60, deadline=None)
def test_cleanup_preserves_function(aig):
    clean = cleanup(aig)
    assert check_acyclic(clean)
    assert exhaustive_truth_tables(clean) == exhaustive_truth_tables(aig)
    assert clean.num_ands <= aig.num_ands


@given(random_aigs())
@settings(max_examples=60, deadline=None)
def test_balance_preserves_function(aig):
    assert (exhaustive_truth_tables(balance(aig))
            == exhaustive_truth_tables(aig))


@given(random_aigs())
@settings(max_examples=40, deadline=None)
def test_xor_balance_preserves_function(aig):
    assert (exhaustive_truth_tables(xor_balance(aig))
            == exhaustive_truth_tables(aig))


@given(random_aigs(max_nodes=16))
@settings(max_examples=25, deadline=None)
def test_refactor_preserves_function_and_never_grows(aig):
    out = refactor(aig)
    assert exhaustive_truth_tables(out) == exhaustive_truth_tables(aig)
    assert out.num_ands <= cleanup(aig).num_ands


@given(random_aigs(max_nodes=16))
@settings(max_examples=25, deadline=None)
def test_rewrite_preserves_function(aig):
    out = rewrite(aig)
    assert exhaustive_truth_tables(out) == exhaustive_truth_tables(aig)


@given(random_aigs(max_nodes=14, max_inputs=4))
@settings(max_examples=20, deadline=None)
def test_techmap_roundtrip_preserves_function(aig):
    from repro.opt.techmap import techmap_roundtrip

    clean = cleanup(aig)
    if clean.num_ands == 0:
        return
    out = techmap_roundtrip(clean)
    assert exhaustive_truth_tables(out) == exhaustive_truth_tables(clean)


@given(random_aigs())
@settings(max_examples=40, deadline=None)
def test_aiger_roundtrip(aig):
    from repro.aig.aiger import read_aag, write_aag

    back = read_aag(write_aag(aig))
    assert exhaustive_truth_tables(back) == exhaustive_truth_tables(aig)
