"""Tests for cut enumeration and cone truth tables."""

import pytest

from repro.aig.aig import Aig, lit_var
from repro.aig.cuts import (
    _CUT_MEMO_LIMIT,
    cached_cuts,
    clear_cut_memo,
    enumerate_cuts,
    nontrivial_cuts,
)
from repro.aig.truth import (
    AND2,
    MAJ3,
    XOR2,
    XOR3,
    cofactor,
    cone_truth_table,
    negate_tt,
    tt_mask,
    tt_support,
    var_pattern,
)
from repro.errors import AigError


class TestTruthPrimitives:
    def test_var_patterns(self):
        assert var_pattern(0, 2) == 0b1010
        assert var_pattern(1, 2) == 0b1100
        assert var_pattern(0, 3) == 0b10101010

    def test_masks(self):
        assert tt_mask(2) == 0xF
        assert tt_mask(3) == 0xFF

    def test_negate(self):
        assert negate_tt(AND2, 2) == 0b0111

    def test_cofactors(self):
        # f = x0 & x1: cofactor on x0
        assert cofactor(AND2, 0, 2, 1) == 0b1100
        assert cofactor(AND2, 0, 2, 0) == 0

    def test_support(self):
        assert tt_support(AND2, 2) == [0, 1]
        assert tt_support(0b1010, 2) == [0]   # f = x0
        assert tt_support(0b1111, 2) == []


class TestConeTruthTable:
    def test_xor_cone(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        x = aig.xor_(a, b)
        var = lit_var(x)
        tt = cone_truth_table(aig, var, (lit_var(a), lit_var(b)))
        # the variable computes XNOR (the literal is complemented)
        assert tt == negate_tt(XOR2, 2)

    def test_escaping_cone_rejected(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        with pytest.raises(AigError):
            cone_truth_table(aig, lit_var(abc), (lit_var(a),))

    def test_full_adder_tables(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(x, y, z)
        leaves = tuple(lit_var(v) for v in (x, y, z))
        s_tt = cone_truth_table(aig, lit_var(s), leaves)
        c_tt = cone_truth_table(aig, lit_var(c), leaves)
        if s & 1:
            s_tt = negate_tt(s_tt, 3)
        if c & 1:
            c_tt = negate_tt(c_tt, 3)
        assert s_tt == XOR3
        assert c_tt == MAJ3


class TestCutEnumeration:
    def test_trivial_cuts_for_inputs(self, mult_4x4_array):
        cuts = enumerate_cuts(mult_4x4_array, k=3)
        for var in mult_4x4_array.inputs:
            assert cuts[var] == [(var,)]

    def test_cut_leaf_bound(self, mult_4x4_dadda):
        cuts = enumerate_cuts(mult_4x4_dadda, k=3, limit=10)
        for var, var_cuts in cuts.items():
            for cut in var_cuts:
                assert len(cut) <= 3
            assert len(var_cuts) <= 10

    def test_cuts_are_real_cuts(self, mult_4x4_array):
        # every cut must allow a bounded truth-table computation
        cuts = enumerate_cuts(mult_4x4_array, k=3, limit=8)
        for var in mult_4x4_array.and_vars():
            for cut in cuts[var]:
                if cut == (var,):
                    continue
                cone_truth_table(mult_4x4_array, var, cut)  # must not raise

    def test_full_adder_boundary_cut_present(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(x, y, z)
        aig.add_output(s)
        aig.add_output(c)
        cuts = enumerate_cuts(aig, k=3, limit=16)
        boundary = tuple(sorted(lit_var(v) for v in (x, y, z)))
        assert boundary in cuts[lit_var(s)]
        assert boundary in cuts[lit_var(c)]

    def test_nontrivial_cuts_helper(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        ab = aig.add_and(a, b)
        cuts = enumerate_cuts(aig, k=2)
        nt = nontrivial_cuts(cuts, lit_var(ab))
        assert (lit_var(ab),) not in nt
        assert nt

    def test_dominated_cuts_pruned(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        ab = aig.add_and(a, b)
        deeper = aig.add_and(ab, a)  # support still {a, b}
        cuts = enumerate_cuts(aig, k=3, limit=16)
        cut_sets = [set(c) for c in cuts[lit_var(deeper)]]
        # no cut is a strict superset of another
        for i, c1 in enumerate(cut_sets):
            for j, c2 in enumerate(cut_sets):
                if i != j:
                    assert not (c1 < c2)


class TestCutEdgeCases:
    def _chain(self, n):
        """A linear AND chain over n inputs (rich cut space)."""
        aig = Aig()
        lits = aig.add_inputs(n)
        acc = lits[0]
        for lit in lits[1:]:
            acc = aig.add_and(acc, lit)
        aig.add_output(acc)
        return aig, lit_var(acc)

    def test_limit_truncates_cut_lists(self):
        aig, root = self._chain(6)
        full = enumerate_cuts(aig, k=4, limit=16)
        small = enumerate_cuts(aig, k=4, limit=2)
        assert len(full[root]) > 2
        assert len(small[root]) == 2
        # the trivial cut survives truncation and stays first
        assert small[root][0] == (root,)

    def test_limit_without_trivial(self):
        aig, root = self._chain(6)
        cuts = enumerate_cuts(aig, k=4, limit=2, include_trivial=False)
        for var in aig.and_vars():
            assert (var,) not in cuts[var]
            assert len(cuts[var]) <= 2
        # shallow nodes still get their boundary cut; deep ones may run
        # out once truncation cascades, but never exceed the limit
        first_and = next(iter(aig.and_vars()))
        assert cuts[first_and]

    def test_k1_leaves_only_trivial_cuts_on_ands(self):
        aig, root = self._chain(4)
        cuts = enumerate_cuts(aig, k=1, limit=8)
        for var in aig.and_vars():
            assert cuts[var] == [(var,)]

    def test_k1_without_trivial_is_empty_on_ands(self):
        aig, root = self._chain(4)
        cuts = enumerate_cuts(aig, k=1, limit=8, include_trivial=False)
        for var in aig.and_vars():
            assert cuts[var] == []

    def test_zero_and_design(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        aig.add_output(a)
        cuts = enumerate_cuts(aig, k=3)
        for var in aig.inputs:
            assert cuts[var] == [(var,)]
        assert not [v for v in cuts if v not in (0, *aig.inputs)]

    def test_dominated_cut_dropped_not_just_deduplicated(self):
        # AND(AND(a, b), a) has support {a, b}; the 3-leaf merge
        # {a, b, ab} is dominated by {a, b} and must be absent entirely.
        aig = Aig()
        a, b = aig.add_inputs(2)
        ab = aig.add_and(a, b)
        deeper = aig.add_and(ab, a)
        cuts = enumerate_cuts(aig, k=3, limit=16)
        leaves = {lit_var(a), lit_var(b)}
        assert tuple(sorted(leaves)) in cuts[lit_var(deeper)]
        assert tuple(sorted(leaves | {lit_var(ab)})) \
            not in cuts[lit_var(deeper)]


class TestCachedCuts:
    def setup_method(self):
        clear_cut_memo()

    def teardown_method(self):
        clear_cut_memo()

    def _pair(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        ab = aig.add_and(a, b)
        aig.add_output(aig.add_and(ab, c))
        return aig

    def test_hit_returns_same_object(self):
        aig = self._pair()
        first = cached_cuts(aig, k=3, limit=8)
        assert cached_cuts(aig, k=3, limit=8) is first

    def test_structural_twin_shares_entry(self):
        first = cached_cuts(self._pair(), k=3, limit=8)
        assert cached_cuts(self._pair(), k=3, limit=8) is first

    def test_parameters_key_the_memo(self):
        aig = self._pair()
        assert cached_cuts(aig, k=2, limit=8) is not \
            cached_cuts(aig, k=3, limit=8)
        assert cached_cuts(aig, k=3, limit=4) is not \
            cached_cuts(aig, k=3, limit=8)

    def test_matches_direct_enumeration(self):
        aig = self._pair()
        assert cached_cuts(aig, k=3, limit=8) == \
            enumerate_cuts(aig, k=3, limit=8)

    def test_clear_forces_recompute(self):
        aig = self._pair()
        first = cached_cuts(aig, k=3, limit=8)
        clear_cut_memo()
        assert cached_cuts(aig, k=3, limit=8) is not first

    def test_lru_eviction(self):
        aig = self._pair()
        first = cached_cuts(aig, k=3, limit=3)
        for limit in range(4, 4 + _CUT_MEMO_LIMIT):
            cached_cuts(aig, k=3, limit=limit)
        # the original key fell off the LRU and is recomputed
        assert cached_cuts(aig, k=3, limit=3) is not first
