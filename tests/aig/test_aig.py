"""Unit tests for the core AIG structure."""

import pytest

from repro.aig.aig import (
    Aig,
    FALSE,
    TRUE,
    lit,
    lit_is_negated,
    lit_neg,
    lit_regular,
    lit_var,
)
from repro.errors import AigError


class TestLiterals:
    def test_encode_decode(self):
        assert lit(3) == 6
        assert lit(3, negated=True) == 7
        assert lit_var(7) == 3
        assert lit_is_negated(7)
        assert not lit_is_negated(6)

    def test_negation_is_involution(self):
        assert lit_neg(lit_neg(6)) == 6
        assert lit_neg(6) == 7

    def test_regular(self):
        assert lit_regular(7) == 6
        assert lit_regular(6) == 6

    def test_constants(self):
        assert FALSE == 0
        assert TRUE == 1
        assert lit_neg(FALSE) == TRUE


class TestStructure:
    def test_empty(self):
        aig = Aig("empty")
        assert aig.num_inputs == 0
        assert aig.num_ands == 0
        assert aig.num_outputs == 0
        assert aig.num_vars == 1  # the constant

    def test_inputs_before_ands(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_and(a, b)
        with pytest.raises(AigError):
            aig.add_input()

    def test_input_literals_are_positive(self):
        aig = Aig()
        a = aig.add_input("x")
        assert not lit_is_negated(a)
        assert aig.is_input(lit_var(a))
        assert aig.input_names == ["x"]

    def test_fanins_of_non_and_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            aig.fanins(lit_var(a))

    def test_unknown_literal_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            aig.add_and(a, 999)

    def test_output_bookkeeping(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        y = aig.add_and(a, b)
        aig.add_output(y, "y")
        assert aig.outputs == [y]
        assert aig.output_names == ["y"]
        aig.set_output(0, a)
        assert aig.outputs == [a]


class TestTrivialSimplification:
    @pytest.fixture()
    def pair(self):
        aig = Aig()
        return aig, aig.add_input(), aig.add_input()

    def test_and_with_false(self, pair):
        aig, a, _ = pair
        assert aig.add_and(a, FALSE) == FALSE
        assert aig.add_and(FALSE, a) == FALSE

    def test_and_with_true(self, pair):
        aig, a, _ = pair
        assert aig.add_and(a, TRUE) == a
        assert aig.add_and(TRUE, a) == a

    def test_idempotence(self, pair):
        aig, a, _ = pair
        assert aig.add_and(a, a) == a

    def test_contradiction(self, pair):
        aig, a, _ = pair
        assert aig.add_and(a, lit_neg(a)) == FALSE

    def test_structural_hashing(self, pair):
        aig, a, b = pair
        first = aig.add_and(a, b)
        assert aig.add_and(b, a) == first
        assert aig.num_ands == 1


class TestGateHelpers:
    def test_gate_truth_tables(self):
        from repro.aig.simulate import exhaustive_truth_tables

        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.and_(a, b))
        aig.add_output(aig.or_(a, b))
        aig.add_output(aig.xor_(a, b))
        aig.add_output(aig.nand_(a, b))
        aig.add_output(aig.nor_(a, b))
        aig.add_output(aig.xnor_(a, b))
        tts = exhaustive_truth_tables(aig)
        assert tts == [0b1000, 0b1110, 0b0110, 0b0111, 0b0001, 0b1001]

    def test_mux_and_maj(self):
        from repro.aig.simulate import exhaustive_truth_tables

        aig = Aig()
        s = aig.add_input()
        t = aig.add_input()
        e = aig.add_input()
        aig.add_output(aig.mux(s, t, e))
        aig.add_output(aig.maj(s, t, e))
        mux_tt, maj_tt = exhaustive_truth_tables(aig)
        # mux: s ? t : e with s the LSB of the minterm index
        for minterm in range(8):
            s_v, t_v, e_v = minterm & 1, (minterm >> 1) & 1, (minterm >> 2) & 1
            assert (mux_tt >> minterm) & 1 == (t_v if s_v else e_v)
            assert (maj_tt >> minterm) & 1 == (1 if s_v + t_v + e_v >= 2 else 0)

    def test_variadic_gates(self):
        from repro.aig.simulate import exhaustive_truth_tables

        aig = Aig()
        bits = aig.add_inputs(4)
        aig.add_output(aig.and_many(bits))
        aig.add_output(aig.or_many(bits))
        aig.add_output(aig.xor_many(bits))
        and_tt, or_tt, xor_tt = exhaustive_truth_tables(aig)
        for minterm in range(16):
            ones = bin(minterm).count("1")
            assert (and_tt >> minterm) & 1 == (minterm == 15)
            assert (or_tt >> minterm) & 1 == (minterm != 0)
            assert (xor_tt >> minterm) & 1 == ones % 2

    def test_empty_variadic_gates(self):
        aig = Aig()
        assert aig.and_many([]) == TRUE
        assert aig.or_many([]) == FALSE
        assert aig.xor_many([]) == FALSE

    def test_half_and_full_adder_values(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s_ha, c_ha = aig.half_adder(x, y)
        s_fa, c_fa = aig.full_adder(x, y, z)
        aig.add_output(s_ha)
        aig.add_output(c_ha)
        aig.add_output(s_fa)
        aig.add_output(c_fa)
        from repro.aig.simulate import evaluate_single

        for minterm in range(8):
            bits = [minterm & 1, (minterm >> 1) & 1, (minterm >> 2) & 1]
            out = evaluate_single(aig, bits)
            assert out[0] + 2 * out[1] == bits[0] + bits[1]
            assert out[2] + 2 * out[3] == sum(bits)


class TestIntrospection:
    def test_levels_and_depth(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_output(abc)
        levels = aig.levels()
        assert levels[lit_var(ab)] == 1
        assert levels[lit_var(abc)] == 2
        assert aig.depth() == 2

    def test_fanout_counts(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        ab = aig.add_and(a, b)
        aig.add_output(ab)
        aig.add_output(ab)
        counts = aig.fanout_counts()
        assert counts[lit_var(ab)] == 2
        assert counts[lit_var(a)] == 1

    def test_stats(self, mult_4x4_array):
        stats = mult_4x4_array.stats()
        assert stats["inputs"] == 8
        assert stats["outputs"] == 8
        assert stats["ands"] == mult_4x4_array.num_ands
        assert stats["depth"] > 0
