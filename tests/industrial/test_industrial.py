"""Tests for the industrial benchmark synthesis (Table II substrate)."""


from repro.genmul import MultiplierSpec
from repro.industrial import (
    designware_like_multiplier,
    designware_like_netlist,
    designware_verilog,
    epfl_like_multiplier,
)

from tests.conftest import check_multiplier_exhaustive, check_multiplier_random


class TestDesignWareLike:
    def test_functionally_a_multiplier(self):
        aig = designware_like_multiplier(4)
        spec = MultiplierSpec.from_name("BP-WT-CL", 4, 4)
        check_multiplier_exhaustive(spec, aig)

    def test_larger_instance_random(self):
        aig = designware_like_multiplier(6)
        spec = MultiplierSpec.from_name("BP-WT-CL", 6, 6)
        check_multiplier_random(spec, aig, samples=30)

    def test_netlist_uses_small_cells(self):
        netlist = designware_like_netlist(4)
        assert netlist.num_cells > 0
        for cell in netlist.cells:
            assert len(cell.inputs) <= 3

    def test_verilog_emitted(self):
        text = designware_verilog(4)
        assert text.startswith("module ")
        assert "endmodule" in text

    def test_boundaries_destroyed(self):
        """The industrial flow must lose atomic blocks relative to the
        pre-mapping netlist — the property that makes Table II hard."""
        from repro.aig.ops import cleanup
        from repro.core.atomic import detect_atomic_blocks
        from repro.genmul import generate_multiplier

        plain = cleanup(generate_multiplier("BP-WT-CL", 6))
        mapped = designware_like_multiplier(6)
        plain_blocks = detect_atomic_blocks(plain)
        mapped_blocks = detect_atomic_blocks(mapped)
        assert len(mapped_blocks) < len(plain_blocks)


class TestEpflLike:
    def test_functionally_a_multiplier(self):
        aig = epfl_like_multiplier(4, rounds=1)
        spec = MultiplierSpec.from_name("SP-DT-LF", 4, 4)
        check_multiplier_exhaustive(spec, aig)

    def test_heavily_restructured(self):
        from repro.aig.ops import cleanup, structural_signature
        from repro.genmul import generate_multiplier

        base = cleanup(generate_multiplier("SP-DT-LF", 4))
        heavy = epfl_like_multiplier(4, rounds=1)
        assert structural_signature(base) != structural_signature(heavy)
