"""Tests for the optimization passes: function preservation and effect."""

import pytest

from repro.aig.ops import cleanup
from repro.aig.simulate import exhaustive_equal, functionally_equal
from repro.genmul import generate_multiplier
from repro.opt import (
    OPTIMIZATIONS,
    balance,
    dce,
    map3,
    optimize,
    refactor,
    resyn3,
    rewrite,
    xor_balance,
)

PASSES = {
    "dce": dce,
    "balance": balance,
    "refactor": refactor,
    "rewrite": rewrite,
    "xor_balance": xor_balance,
}


class TestFunctionPreservation:
    @pytest.mark.parametrize("pass_name", sorted(PASSES))
    @pytest.mark.parametrize("arch", ["SP-AR-RC", "SP-DT-LF", "BP-WT-CL"])
    def test_pass_preserves_function_exhaustive(self, pass_name, arch):
        aig = generate_multiplier(arch, 3)
        assert exhaustive_equal(aig, PASSES[pass_name](aig)), (pass_name, arch)

    @pytest.mark.parametrize("script", sorted(OPTIMIZATIONS))
    def test_script_preserves_function_exhaustive(self, script):
        aig = generate_multiplier("SP-WT-KS", 3)
        assert exhaustive_equal(aig, optimize(aig, script)), script

    @pytest.mark.parametrize("script", ["resyn3", "dc2", "map3"])
    def test_script_preserves_function_8x8(self, script, mult_8x8_dadda):
        optimized = optimize(mult_8x8_dadda, script)
        assert functionally_equal(mult_8x8_dadda, optimized), script

    def test_unknown_script_rejected(self, mult_4x4_array):
        with pytest.raises(ValueError):
            optimize(mult_4x4_array, "fraig")


class TestReductionEffect:
    def test_resyn3_shrinks_3x3_array(self):
        """The paper's Example 2: resyn3 reduces the 3x3 array multiplier
        by about 15%."""
        aig = cleanup(generate_multiplier("SP-AR-RC", 3))
        optimized = resyn3(aig)
        reduction = 1 - optimized.num_ands / aig.num_ands
        assert reduction >= 0.10, f"only {reduction:.0%} reduction"

    @pytest.mark.parametrize("script", ["resyn3", "dc2", "compress2"])
    def test_scripts_never_grow(self, script, mult_8x8_dadda):
        base = cleanup(mult_8x8_dadda)
        optimized = optimize(base, script)
        assert optimized.num_ands <= base.num_ands

    def test_balance_reduces_depth_of_chain(self):
        from repro.aig.aig import Aig

        aig = Aig()
        bits = aig.add_inputs(8)
        acc = bits[0]
        for bit in bits[1:]:
            acc = aig.and_(acc, bit)
        aig.add_output(acc)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert exhaustive_equal(aig, balanced)

    def test_passes_keep_interface(self, mult_4x4_dadda):
        for pass_fn in PASSES.values():
            result = pass_fn(mult_4x4_dadda)
            assert result.num_inputs == mult_4x4_dadda.num_inputs
            assert result.num_outputs == mult_4x4_dadda.num_outputs
            assert result.input_names == mult_4x4_dadda.input_names


class TestGuards:
    def test_refactor_guard_never_grows(self, mult_4x4_booth):
        base = cleanup(mult_4x4_booth)
        assert refactor(base, zero_cost=True).num_ands <= base.num_ands
        assert rewrite(base, zero_cost=True).num_ands <= base.num_ands

    def test_xor_balance_is_size_neutral_or_better(self, mult_8x8_dadda):
        base = cleanup(mult_8x8_dadda)
        rebalanced = xor_balance(base)
        assert rebalanced.num_ands <= base.num_ands + 2


class TestMap3:
    def test_map3_restructures(self, mult_8x8_dadda):
        """The boundary-destroying flow must change the structure while
        preserving the function."""
        from repro.aig.ops import structural_signature

        mapped = map3(mult_8x8_dadda)
        assert functionally_equal(mult_8x8_dadda, mapped)
        assert (structural_signature(mapped)
                != structural_signature(cleanup(mult_8x8_dadda)))

    def test_map3_destroys_compact_patterns(self, mult_8x8_dadda):
        """After map3, reverse engineering must lose blocks or the
        compact substitution rate must drop — the measurable form of
        'optimization destroys atomic-block boundaries'."""
        from repro.core.atomic import detect_atomic_blocks

        plain_blocks = detect_atomic_blocks(cleanup(mult_8x8_dadda))
        mapped_blocks = detect_atomic_blocks(map3(mult_8x8_dadda))
        plain_ha = sum(1 for b in plain_blocks if b.kind == "HA")
        mapped_ha = sum(1 for b in mapped_blocks if b.kind == "HA")
        assert mapped_ha < plain_ha
