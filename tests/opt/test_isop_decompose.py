"""Tests for ISOP and recursive Boolean decomposition."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import Aig
from repro.aig.simulate import exhaustive_truth_tables
from repro.aig.truth import tt_mask
from repro.errors import ReproError
from repro.opt.decompose import (
    build_tree,
    decompose,
    synthesize_best,
    tree_cost,
)
from repro.opt.isop import build_sop, cubes_to_tt, isop, synthesize_tt


def synthesized_tt(builder, tt, num_vars):
    aig = Aig()
    leaves = aig.add_inputs(num_vars)
    aig.add_output(builder(aig, tt, leaves))
    return exhaustive_truth_tables(aig)[0]


class TestIsop:
    @pytest.mark.parametrize("num_vars", [0, 1, 2, 3, 4])
    def test_exhaustive_small(self, num_vars):
        mask = tt_mask(num_vars)
        space = range(mask + 1) if num_vars <= 3 else \
            random.Random(0).sample(range(mask + 1), 200)
        for tt in space:
            cubes = isop(tt, num_vars)
            assert cubes_to_tt(cubes, num_vars) == tt

    def test_constants(self):
        assert isop(0, 3) == []
        assert isop(tt_mask(3), 3) == [()]

    def test_dont_cares_respected(self):
        lower = 0b1000
        upper = 0b1010
        cubes = isop(lower, 2, upper=upper)
        cover = cubes_to_tt(cubes, 2)
        assert cover & ~upper & 0xF == 0
        assert cover & lower == lower

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ReproError):
            isop(0b1111, 2, upper=0b0001)

    def test_irredundancy_on_known_function(self):
        # x | y needs exactly two cubes
        assert len(isop(0b1110, 2)) == 2


class TestDecompose:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=200)
    def test_tree_matches_function_4vars(self, tt):
        aig = Aig()
        leaves = aig.add_inputs(4)
        tree = decompose(tt, 4)
        aig.add_output(build_tree(aig, tree, leaves))
        assert exhaustive_truth_tables(aig)[0] == tt

    def test_xor_costs_less_than_sop(self):
        from repro.aig.truth import XOR3
        from repro.opt.isop import _cover_cost

        tree = decompose(XOR3, 3)
        assert tree_cost(tree) < _cover_cost(isop(XOR3, 3))
        assert tree_cost(tree) == 6

    def test_cost_is_exact_node_count_on_tree_functions(self):
        # AND(a, b): one node
        tree = decompose(0b1000, 2)
        assert tree_cost(tree) == 1

    @pytest.mark.parametrize("num_vars", [1, 2, 3])
    def test_synthesize_best_exhaustive(self, num_vars):
        mask = tt_mask(num_vars)
        for tt in range(mask + 1):
            assert synthesized_tt(synthesize_best, tt, num_vars) == tt

    def test_synthesize_best_random_5vars(self):
        rng = random.Random(9)
        for _ in range(40):
            tt = rng.getrandbits(32) & tt_mask(5)
            assert synthesized_tt(synthesize_best, tt, 5) == tt

    def test_synthesize_tt_matches(self):
        rng = random.Random(2)
        for _ in range(40):
            tt = rng.getrandbits(16) & tt_mask(4)
            assert synthesized_tt(synthesize_tt, tt, 4) == tt

    def test_synthesize_best_never_worse_than_sop(self):
        rng = random.Random(5)
        for _ in range(30):
            tt = rng.getrandbits(16)
            a1 = Aig()
            leaves = a1.add_inputs(4)
            synthesize_best(a1, tt, leaves)
            a2 = Aig()
            leaves = a2.add_inputs(4)
            build_sop(a2, isop(tt & 0xFFFF, 4), leaves)
            assert a1.num_ands <= a2.num_ands
