"""Unit tests for XOR-tree detection and re-association."""

import pytest

from repro.aig.aig import Aig, lit_neg, lit_var
from repro.aig.simulate import exhaustive_equal
from repro.opt.xor_balance import collect_xor_leaves, xor_balance, xor_root
from repro.aig.ops import fanout_map


def make_xor_chain(length):
    """((a0 ^ a1) ^ a2) ^ ... — a maximally skewed XOR chain."""
    aig = Aig()
    bits = aig.add_inputs(length)
    acc = bits[0]
    for bit in bits[1:]:
        acc = aig.xor_(acc, bit)
    aig.add_output(acc)
    return aig, acc


class TestXorRoot:
    def test_detects_generated_xor(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        x = aig.xor_(a, b)
        info = xor_root(aig, lit_var(x))
        assert info is not None
        l1, l2, _p, _q = info
        assert {lit_var(l1), lit_var(l2)} == {lit_var(a), lit_var(b)}

    def test_rejects_plain_and(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        w = aig.add_and(a, b)
        assert xor_root(aig, lit_var(w)) is None

    def test_rejects_half_xor(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        n1 = aig.add_and(a, lit_neg(b))
        n2 = aig.add_and(lit_neg(a), b)
        w = aig.add_and(n1, n2)   # not the negated pair shape
        assert xor_root(aig, lit_var(w)) is None


class TestCollect:
    def test_chain_collapses_to_leaves(self):
        aig, acc = make_xor_chain(5)
        fanouts, po_refs = fanout_map(aig)
        refs = {v: len(fanouts[v]) + po_refs[v] for v in range(aig.num_vars)}
        collected = collect_xor_leaves(aig, lit_var(acc), refs)
        assert collected is not None
        leaves, _parity = collected
        assert {lit_var(l) for l in leaves} == set(aig.inputs)


class TestPass:
    @pytest.mark.parametrize("length", [3, 4, 7, 9])
    def test_chain_rebalanced(self, length):
        aig, _acc = make_xor_chain(length)
        rebalanced = xor_balance(aig)
        assert exhaustive_equal(aig, rebalanced)
        # depth must drop from linear to logarithmic
        if length >= 7:
            assert rebalanced.depth() < aig.depth()

    def test_multiplier_preserved(self, mult_4x4_booth):
        rebalanced = xor_balance(mult_4x4_booth)
        assert exhaustive_equal(mult_4x4_booth, rebalanced)

    def test_shared_xor_not_duplicated(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        shared = aig.xor_(a, b)
        aig.add_output(aig.xor_(shared, c))
        aig.add_output(aig.and_(shared, c))   # second consumer
        rebalanced = xor_balance(aig)
        assert exhaustive_equal(aig, rebalanced)
        assert rebalanced.num_ands <= aig.num_ands + 1
