"""End-to-end arena vs dict parity across a 19-design sweep.

The arena is an *internal representation switch* (``use_arena``): with
it on, ``SP_i`` lives in sorted parallel columns and every substitution
runs through the sorted-merge kernels; with it off, the engine uses the
historical dict path.  Nothing observable may change — verdicts,
remainder polynomials, counterexamples and the per-step ``SP_i``-size
trace (the Fig. 5 curve) have to be bit-identical, because the dynamic
engine's accept/reject decisions feed off exact polynomial sizes.

The sweep covers all eight Table I architectures, the optimization
scripts that destroy atomic-block boundaries, both rewriting methods
and injected faults (exercising the counterexample extractor), in the
exact and modular coefficient rings — 19 designs in total.
"""

import pytest

from repro.core.verifier import verify_multiplier
from repro.genmul import generate_multiplier
from repro.genmul.faults import inject_visible_fault
from repro.opt.scripts import optimize

# (architecture, width, optimization, method, fault-kind or None)
DESIGNS = [
    ("SP-DT-LF", 4, "none", "dyposub", None),
    ("SP-AR-CK", 4, "none", "dyposub", None),
    ("SP-BD-KS", 4, "none", "dyposub", None),
    ("SP-WT-CL", 4, "none", "dyposub", None),
    ("BP-AR-RC", 4, "none", "dyposub", None),
    ("BP-OS-CU", 4, "none", "dyposub", None),
    ("SP-AR-RC", 4, "none", "dyposub", None),
    ("SP-WT-BK", 4, "none", "dyposub", None),
    ("SP-DT-LF", 4, "dc2", "dyposub", None),
    ("SP-WT-CL", 4, "resyn3", "dyposub", None),
    ("SP-AR-RC", 4, "map3", "dyposub", None),
    ("BP-AR-RC", 4, "dc2", "dyposub", None),
    ("SP-AR-RC", 4, "none", "static", None),
    ("SP-DT-LF", 4, "dc2", "static", None),
    ("SP-WT-CL", 4, "none", "static", None),
    ("SP-WT-CL", 8, "none", "dyposub", None),
    ("SP-DT-LF", 8, "none", "static", None),
    ("SP-AR-RC", 4, "none", "dyposub", "gate-type"),
    ("SP-DT-LF", 4, "none", "dyposub", "wrong-wire"),
]

assert len(DESIGNS) == 19


def _build(architecture, width, optimization, fault):
    aig = optimize(generate_multiplier(architecture, width), optimization)
    if fault is not None:
        aig = inject_visible_fault(aig, kind=fault, seed=0)
    return aig


def fingerprint(aig, method, ring, use_arena):
    result = verify_multiplier(aig, method=method, ring=ring,
                               record_trace=True, monomial_budget=200_000,
                               use_arena=use_arena)
    remainder = (result.remainder.to_string()
                 if result.remainder is not None else None)
    return {"status": result.status,
            "remainder": remainder,
            "counterexample": result.counterexample,
            "sizes": result.sizes()}


@pytest.mark.parametrize("architecture,width,optimization,method,fault",
                         DESIGNS)
@pytest.mark.parametrize("ring", ["exact", "modular"])
def test_arena_matches_dict_end_to_end(architecture, width, optimization,
                                       method, fault, ring):
    aig = _build(architecture, width, optimization, fault)
    with_arena = fingerprint(aig, method, ring, use_arena=True)
    with_dict = fingerprint(aig, method, ring, use_arena=False)
    assert with_arena == with_dict
    expected = "buggy" if fault else "correct"
    assert with_arena["status"] == expected
    if fault:
        assert with_arena["counterexample"] is not None
