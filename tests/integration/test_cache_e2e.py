"""The acceptance demo of the certificate cache, end to end.

First verification of a design runs the full pipeline; resubmitting the
same *or any isomorphic* AIG returns the identical verdict with
``cache_hit: true`` without entering the rewrite phase (asserted on the
obs event stream); a fault-injected variant is a cache miss and
verifies as buggy.
"""

import pytest

from repro.core.pipeline import Pipeline, VerifyConfig
from repro.genmul.faults import FAULT_KINDS, inject_visible_fault
from repro.genmul.multiplier import generate_multiplier
from repro.obs.recorder import Recorder
from repro.obs.store import RunStore
from repro.service.persistence import verdict_record
from tests.service.test_fingerprint import shuffled_copy


def _run(aig, store, use_cache=True, **config_kwargs):
    recorder = Recorder()
    config = VerifyConfig(record_trace=True, record_certificate=True,
                          **config_kwargs)
    result = Pipeline(config).run(aig, recorder=recorder, store=store,
                                  design="e2e", use_cache=use_cache)
    return result, recorder.events


class TestCacheEndToEnd:
    @pytest.fixture()
    def store(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            yield store

    def test_full_cycle(self, store):
        aig = generate_multiplier("SP-AR-RC", 4)

        # -- first run: the full pipeline, then a stored certificate
        first, events = _run(aig, store)
        assert first.status == "correct"
        assert first.stats["cache_hit"] is False
        kinds = [e["ev"] for e in events]
        assert "cache_miss" in kinds          # consulted, empty
        assert "cache_store" in kinds         # certified afterwards
        assert any(e["ev"] == "span" and e.get("name") == "rewrite"
                   for e in events)           # it really rewrote

        # -- resubmit the same AIG: O(hash) replay, no rewrite phase
        replay, replay_events = _run(aig, store)
        assert replay.status == "correct"
        assert replay.stats["cache_hit"] is True
        assert [e["ev"] for e in replay_events] == \
            ["run_begin", "cache_hit", "run_end"]

        # -- the verdict is field-identical to the first run's
        first_record = verdict_record(first)
        replay_record = verdict_record(replay)
        for key in ("status", "method", "seconds", "stats", "sizes",
                    "summary", "certificate", "commits"):
            assert replay_record[key] == first_record[key], key
        assert first_record["cache_hit"] is False
        assert replay_record["cache_hit"] is True

        # -- any isomorphic rewrite of the design hits the same slot
        for seed in range(2):
            iso, iso_events = _run(shuffled_copy(aig, seed=seed), store)
            assert iso.stats["cache_hit"] is True
            assert iso.status == "correct"
            assert not any(e["ev"] == "span" and
                           e.get("name") == "rewrite"
                           for e in iso_events)

        # -- a faulty variant misses the cache and verifies as buggy
        buggy = inject_visible_fault(aig, kind="gate-type", seed=0)
        bad, bad_events = _run(buggy, store)
        assert bad.status == "buggy"
        assert bad.stats["cache_hit"] is False
        assert any(e["ev"] == "cache_miss" for e in bad_events)

        # ... and lands in its own slot: replaying it stays buggy
        bad_again, _ = _run(buggy, store)
        assert bad_again.stats["cache_hit"] is True
        assert bad_again.status == "buggy"

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_fault_kind_is_a_cache_miss(self, store, kind):
        aig = generate_multiplier("SP-AR-RC", 4)
        clean, _ = _run(aig, store)
        assert clean.status == "correct"
        buggy = inject_visible_fault(aig, kind=kind, seed=1)
        result, events = _run(buggy, store)
        assert result.stats["cache_hit"] is False
        assert result.status == "buggy"

    def test_no_cache_bypasses_replay_but_still_stores(self, store):
        aig = generate_multiplier("SP-AR-RC", 4)
        first, _ = _run(aig, store)
        again, events = _run(aig, store, use_cache=False)
        assert again.stats["cache_hit"] is False
        assert not any(e["ev"] == "cache_hit" for e in events)

    def test_signed_claim_occupies_its_own_slot(self, store):
        # SPS = signed two's-complement multiplier: correct under the
        # signed spec, buggy under the unsigned one — the fingerprint
        # must keep the two claims apart
        aig = generate_multiplier("SPS-AR-RC", 4)
        signed, _ = _run(aig, store, signed=True)
        assert signed.status == "correct"
        unsigned, events = _run(aig, store, signed=False)
        assert unsigned.stats["cache_hit"] is False
        assert unsigned.status == "buggy"
        # both verdicts now replay from their own slots
        assert _run(aig, store, signed=True)[0].stats["cache_hit"] \
            is True
        assert _run(aig, store, signed=False)[0].status == "buggy"
