"""Signed-multiplier parity: the probe's advisory and the formal
verdict must agree about signedness, end to end.

The random-simulation probe flags a two's-complement multiplier with an
*info* RA032 recommending ``verify --signed``; the SCA pipeline must
then accept the design under the signed spec and reject it under the
unsigned one, through the config layer, the CLI flag and the service's
job options alike.
"""

import pytest

from repro.analysis import lint_design
from repro.cli import main
from repro.genmul.multiplier import generate_multiplier


@pytest.fixture(scope="module")
def signed_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("signed") / "sps.aag"
    assert main(["generate", "SPS-AR-RC", "4", "-o", str(path)]) == 0
    return str(path)


class TestProbeAdvisory:
    def test_probe_emits_info_ra032_with_the_flag_hint(self):
        report = lint_design(generate_multiplier("SPS-AR-RC", 4))
        assert report.clean  # an info is advice, not a finding
        infos = report.by_severity("info")
        assert any(d.code == "RA032" and "--signed" in d.message
                   for d in infos), report.render()

    def test_unsigned_multiplier_gets_no_advisory(self):
        report = lint_design(generate_multiplier("SP-AR-RC", 4))
        assert not any(d.code == "RA032" for d in report)


class TestCliParity:
    def test_signed_flag_accepts_what_the_probe_flagged(self, signed_path,
                                                        capsys):
        assert main(["verify", signed_path, "--signed"]) == 0
        assert "correct" in capsys.readouterr().out

    def test_unsigned_spec_rejects_it(self, signed_path, capsys):
        assert main(["verify", signed_path]) == 1
        out = capsys.readouterr().out
        assert "buggy" in out and "counterexample" in out


class TestServiceParity:
    def test_service_accepts_signed_jobs(self, signed_path):
        from repro.service.core import VerificationService

        with open(signed_path, "r", encoding="ascii") as handle:
            text = handle.read()
        service = VerificationService(use_processes=False)
        try:
            signed = service.submit("sps.aag", text,
                                    options={"signed": True})
            unsigned = service.submit("sps-as-unsigned.aag", text)
            service.start()
            import time

            deadline = time.monotonic() + 120
            while not (signed.finished and unsigned.finished):
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            service.shutdown()
        assert signed.record["status"] == "correct"
        assert unsigned.record["status"] == "buggy"
