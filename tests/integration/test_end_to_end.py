"""Integration tests spanning the whole pipeline.

These encode the paper's qualitative claims at test scale:

* every generated architecture verifies (Algorithm 1 returns TRUE);
* optimized and technology-mapped versions still verify with DyPoSub;
* the dynamic order keeps ``SP_i`` peaks far below the static order on
  restructured netlists (Fig. 5 / Example 4);
* buggy circuits are rejected with simulation-confirmed witnesses.
"""

import pytest

from repro.aig.simulate import functionally_equal
from repro.baselines import verify_revsca_static
from repro.core import verify_multiplier
from repro.genmul import generate_multiplier, inject_visible_fault
from repro.opt import dc2, map3, optimize, resyn3


class TestVerifyEverythingSmall:
    @pytest.mark.parametrize("arch", [
        "SP-AR-RC", "SP-AR-CK", "SP-WT-CL", "SP-WT-BK", "SP-DT-LF",
        "SP-DT-KS", "SP-BD-KS", "SP-BD-RC", "SP-OS-CU", "SP-OS-LF",
        "BP-AR-RC", "BP-WT-RC",
    ])
    def test_4x4_grid(self, arch):
        result = verify_multiplier(generate_multiplier(arch, 4),
                                   monomial_budget=500_000, time_budget=120)
        assert result.ok, (arch, result.status)


class TestOptimizedVerification:
    @pytest.mark.parametrize("script", ["resyn3", "dc2", "map3", "xor"])
    def test_dyposub_verifies_optimized_8x8(self, script, mult_8x8_dadda):
        optimized = optimize(mult_8x8_dadda, script)
        result = verify_multiplier(optimized, monomial_budget=500_000,
                                   time_budget=300)
        assert result.ok, (script, result.status)

    def test_optimization_plus_verification_agree_with_simulation(
            self, mult_8x8_dadda):
        optimized = resyn3(mult_8x8_dadda)
        assert functionally_equal(mult_8x8_dadda, optimized)
        assert verify_multiplier(optimized, monomial_budget=500_000).ok


class TestDynamicVsStaticContrast:
    def test_peak_gap_on_mapped_8x8(self, mult_8x8_dadda):
        """The paper's central experiment: on a boundary-destroyed
        netlist the static order explodes while dynamic stays bounded."""
        mapped = map3(mult_8x8_dadda)
        budget = 120_000
        dynamic = verify_multiplier(mapped, method="dyposub",
                                    monomial_budget=budget, time_budget=240)
        static = verify_revsca_static(mapped, monomial_budget=budget,
                                      time_budget=240)
        assert dynamic.ok
        assert static.timed_out
        assert (static.stats["max_poly_size"]
                > dynamic.stats["max_poly_size"])

    def test_example4_magnitude_gap(self):
        """Example 4's shape: on an optimized multiplier a topological
        order reaches a five-to-six-digit monomial count while a good
        order stays orders of magnitude lower.

        The static leg runs without the implication-derived rules — it
        models the prior-art static verifiers, which lack them.
        """
        aig = resyn3(generate_multiplier("SP-DT-LF", 12))
        dynamic = verify_multiplier(aig, monomial_budget=600_000,
                                    time_budget=240)
        static = verify_multiplier(aig, method="static",
                                   use_implications=False,
                                   monomial_budget=600_000, time_budget=240)
        assert dynamic.ok
        dynamic_peak = dynamic.stats["max_poly_size"]
        static_peak = static.stats["max_poly_size"]
        assert static_peak >= 10 * dynamic_peak, (dynamic_peak, static_peak)


class TestBuggyAcrossPipeline:
    def test_optimized_buggy_still_rejected(self, mult_4x4_dadda):
        # buggy designs rewrite slower than correct ones (the fault's
        # residue never cancels), so this integration case stays at 4x4
        buggy = inject_visible_fault(mult_4x4_dadda, kind="gate-type",
                                     seed=41)
        optimized = dc2(buggy)
        result = verify_multiplier(optimized, monomial_budget=500_000,
                                   time_budget=240,
                                   want_counterexample=False)
        assert result.status == "buggy"

    def test_mapped_buggy_rejected(self, mult_4x4_dadda):
        from repro.opt import techmap_roundtrip

        buggy = inject_visible_fault(mult_4x4_dadda, kind="wrong-wire",
                                     seed=13)
        mapped = techmap_roundtrip(buggy)
        result = verify_multiplier(mapped, monomial_budget=500_000,
                                   want_counterexample=False)
        assert result.status == "buggy"


class TestAigerInterop:
    def test_verify_after_file_round_trip(self, tmp_path, mult_4x4_dadda):
        from repro.aig import read_aag, write_aag

        path = tmp_path / "mult.aag"
        write_aag(mult_4x4_dadda, str(path))
        loaded = read_aag(str(path))
        assert verify_multiplier(loaded).ok
