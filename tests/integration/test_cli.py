"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_generate_and_verify(self, tmp_path, capsys):
        path = tmp_path / "m.aag"
        assert main(["generate", "SP-DT-LF", "4", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "correct" in out

    def test_optimize_round(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        dst = tmp_path / "opt.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["optimize", str(src), "--script", "resyn3",
                     "-o", str(dst)]) == 0
        assert main(["verify", str(dst)]) == 0

    def test_inject_and_catch(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["inject", str(src), "--kind", "gate-type",
                     "-o", str(bug)]) == 0
        assert main(["verify", str(bug)]) == 1
        out = capsys.readouterr().out
        assert "buggy" in out
        assert "counterexample" in out

    def test_timeout_exit_code(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-DT-LF", "8", "-o", str(src)])
        assert main(["verify", str(src), "--budget", "10"]) == 2

    def test_stats(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["stats", str(src)]) == 0
        out = capsys.readouterr().out
        assert "ands:" in out
        assert "full_adders:" in out

    def test_static_method_flag(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--method", "static"]) == 0

    def test_rectangular_width(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-WT-RC", "4", "--width-b", "3",
              "-o", str(src)])
        assert main(["verify", str(src), "--width-a", "4"]) == 0

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "SP-AR-RC", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("aag ")


class TestObservabilityCli:
    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--trace-out", str(trace)]) == 0
        from repro.obs import read_events

        events = read_events(str(trace))
        kinds = [event["ev"] for event in events]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "summary"
        assert "run_end" in kinds
        assert "step" in kinds and "span" in kinds

    def test_profile_prints_phase_breakdown(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-DT-LF", "4", "-o", str(src)])
        assert main(["verify", str(src), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        assert "rewrite" in out
        assert "SP_i: peak" in out

    def test_report_roundtrip(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-DT-LF", "4", "-o", str(src)])
        main(["verify", str(src), "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# outcome: correct" in out
        assert "SP_i size per committed rewriting step" in out
        assert "Backward-rewriting dynamics" in out

    def test_verbose_logging_goes_to_stderr(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        assert main(["generate", "SP-AR-RC", "4", "-o", str(src),
                     "-v"]) == 0
        err = capsys.readouterr().err
        assert "repro.cli" in err
        assert "AND nodes" in err

    def test_quiet_suppresses_info(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        assert main(["generate", "SP-AR-RC", "4", "-o", str(src),
                     "-q"]) == 0
        assert "repro.cli" not in capsys.readouterr().err
