"""Tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_generate_and_verify(self, tmp_path, capsys):
        path = tmp_path / "m.aag"
        assert main(["generate", "SP-DT-LF", "4", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "correct" in out

    def test_optimize_round(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        dst = tmp_path / "opt.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["optimize", str(src), "--script", "resyn3",
                     "-o", str(dst)]) == 0
        assert main(["verify", str(dst)]) == 0

    def test_inject_and_catch(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["inject", str(src), "--kind", "gate-type",
                     "-o", str(bug)]) == 0
        assert main(["verify", str(bug)]) == 1
        out = capsys.readouterr().out
        assert "buggy" in out
        assert "counterexample" in out

    def test_timeout_exit_code(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-DT-LF", "8", "-o", str(src)])
        assert main(["verify", str(src), "--budget", "10"]) == 2

    def test_stats(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["stats", str(src)]) == 0
        out = capsys.readouterr().out
        assert "ands:" in out
        assert "full_adders:" in out

    def test_static_method_flag(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--method", "static"]) == 0

    def test_rectangular_width(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-WT-RC", "4", "--width-b", "3",
              "-o", str(src)])
        assert main(["verify", str(src), "--width-a", "4"]) == 0

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "SP-AR-RC", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("aag ")


class TestObservabilityCli:
    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--trace-out", str(trace)]) == 0
        from repro.obs import read_events

        events = read_events(str(trace))
        kinds = [event["ev"] for event in events]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "summary"
        assert "run_end" in kinds
        assert "step" in kinds and "span" in kinds

    def test_profile_prints_phase_breakdown(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-DT-LF", "4", "-o", str(src)])
        assert main(["verify", str(src), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        assert "rewrite" in out
        assert "SP_i: peak" in out

    def test_report_roundtrip(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-DT-LF", "4", "-o", str(src)])
        main(["verify", str(src), "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# outcome: correct" in out
        assert "SP_i size per committed rewriting step" in out
        assert "Backward-rewriting dynamics" in out

    def test_verbose_logging_goes_to_stderr(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        assert main(["generate", "SP-AR-RC", "4", "-o", str(src),
                     "-v"]) == 0
        err = capsys.readouterr().err
        assert "repro.cli" in err
        assert "AND nodes" in err

    def test_quiet_suppresses_info(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        assert main(["generate", "SP-AR-RC", "4", "-o", str(src),
                     "-q"]) == 0
        assert "repro.cli" not in capsys.readouterr().err


class TestLiveVerifyCli:
    def test_live_flag_runs_clean(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--live",
                     "--stall-budget", "60"]) == 0
        captured = capsys.readouterr()
        assert "correct" in captured.out
        # no stall on a sub-second run
        assert "RP011" not in captured.err

    def test_live_with_trace_keeps_the_stream(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--live", "--trace-out",
                     str(trace)]) == 0
        from repro.obs import read_events

        kinds = [event["ev"] for event in read_events(str(trace))]
        assert "progress" in kinds
        assert kinds[-1] == "summary"


class TestObsCli:
    def _trace(self, tmp_path, name="run.jsonl", arch="SP-AR-RC"):
        src = tmp_path / f"{name}.aag"
        trace = tmp_path / name
        main(["generate", arch, "4", "-o", str(src)])
        main(["verify", str(src), "--trace-out", str(trace)])
        return trace

    def test_ingest_and_trends(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        trace = self._trace(tmp_path)
        assert main(["obs", "ingest", "--db", str(db), str(trace)]) == 0
        assert main(["obs", "ingest", "--db", str(db), str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "trends", "--db", str(db), "--check"]) == 0
        out = capsys.readouterr().out
        assert "Run-history trends" in out
        assert "run" in out  # design label from the trace stem

    def test_trends_check_fails_on_regression(self, tmp_path, capsys):
        import json

        from repro.obs import RunStore

        db = tmp_path / "runs.db"
        with RunStore(db) as store:
            for seconds in (1.0, 1.0, 2.5):
                store.add_run("m8", "dyposub", seconds=seconds)
        verdicts_path = tmp_path / "verdicts.json"
        assert main(["obs", "trends", "--db", str(db), "--check",
                     "--json", str(verdicts_path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err
        payload = json.loads(verdicts_path.read_text())
        assert payload["verdicts"][0]["verdict"] == "regression"

    def test_verify_db_auto_ingests(self, tmp_path, capsys):
        from repro.obs import RunStore

        db = tmp_path / "runs.db"
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--db", str(db)]) == 0
        with RunStore(db) as store:
            assert len(store) == 1
            run = store.latest("m", "none", "dyposub")
            assert run["status"] == "correct"
            assert store.sizes(run["id"])  # commit trajectory landed

    def test_batch_verify_db_and_json_rows_carry_sizes(self, tmp_path,
                                                       capsys):
        import json

        from repro.obs import RunStore

        db = tmp_path / "runs.db"
        out_json = tmp_path / "batch.json"
        a = tmp_path / "a.aag"
        b = tmp_path / "b.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(a)])
        main(["generate", "SP-DT-LF", "4", "-o", str(b)])
        assert main(["verify", str(a), str(b), "--json", str(out_json),
                     "--db", str(db)]) == 0
        payload = json.loads(out_json.read_text())
        for record in payload["records"]:
            assert record["sizes"], record["input"]
            assert record["commits"], record["input"]
        with RunStore(db) as store:
            assert len(store) == 2

    def test_diff_two_traces(self, tmp_path, capsys):
        trace_a = self._trace(tmp_path, "a.jsonl", arch="SP-AR-RC")
        trace_b = self._trace(tmp_path, "b.jsonl", arch="SP-DT-LF")
        capsys.readouterr()
        assert main(["obs", "diff", str(trace_a), str(trace_b)]) == 0
        out = capsys.readouterr().out
        assert "first substitution-order divergence" in out
        assert "peak SP_i size" in out

    def test_diff_store_ref_against_trace(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        trace = self._trace(tmp_path)
        main(["obs", "ingest", "--db", str(db), str(trace)])
        capsys.readouterr()
        assert main(["obs", "diff", "run:1", str(trace),
                     "--db", str(db), "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "none (identical substitution order)" in out

    def test_diff_unknown_run_ref(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        trace = self._trace(tmp_path)
        assert main(["obs", "diff", "run:99", str(trace),
                     "--db", str(db)]) == 2
        assert "obs diff" in capsys.readouterr().err

    def test_dashboard_and_prometheus(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        html = tmp_path / "dash.html"
        prom = tmp_path / "metrics.prom"
        trace = self._trace(tmp_path)
        main(["obs", "ingest", "--db", str(db), str(trace)])
        assert main(["obs", "dashboard", "--db", str(db), "-o", str(html),
                     "--prometheus", str(prom)]) == 0
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text
        prom_text = prom.read_text()
        assert "repro_runs_total 1" in prom_text
        assert "repro_run_seconds" in prom_text

    def test_prune_keep_last(self, tmp_path, capsys):
        from repro.obs import RunStore

        db = tmp_path / "runs.db"
        with RunStore(db) as store:
            for seconds in (1.0, 2.0, 3.0):
                store.add_run("m8", "dyposub", seconds=seconds)
        assert main(["obs", "prune", "--db", str(db),
                     "--keep-last", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 run(s), 1 remaining" in out
        assert "rows:" in out
        with RunStore(db) as store:
            assert len(store) == 1
            assert store.runs()[0]["seconds"] == 3.0

    def test_prune_before_date(self, tmp_path, capsys):
        from repro.obs import RunStore

        db = tmp_path / "runs.db"
        with RunStore(db) as store:
            store.add_run("m8", "dyposub", seconds=1.0,
                          created_at=100.0)  # 1970: ancient
            store.add_run("m8", "dyposub", seconds=2.0)  # now
        assert main(["obs", "prune", "--db", str(db),
                     "--before", "2020-01-01"]) == 0
        assert "pruned 1 run(s), 1 remaining" in capsys.readouterr().out

    def test_prune_requires_a_filter(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert main(["obs", "prune", "--db", str(db)]) == 2
        assert "prune" in capsys.readouterr().err

    def test_prune_rejects_bad_date(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert main(["obs", "prune", "--db", str(db),
                     "--before", "not-a-date"]) == 2
        assert "--before" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_verify_resources_prints_the_table(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--resources"]) == 0
        out = capsys.readouterr().out
        assert "Resource usage" in out
        assert "rewrite" in out
        assert "run total: peak RSS" in out

    def test_verify_profile_sample_prints_hotspots(self, tmp_path,
                                                   capsys):
        src = tmp_path / "m.aag"
        collapsed = tmp_path / "stacks.txt"
        main(["generate", "SP-AR-RC", "6", "-o", str(src)])
        assert main(["verify", str(src), "--profile-sample",
                     "--profile-interval", "0.001",
                     "--collapsed-out", str(collapsed)]) == 0
        out = capsys.readouterr().out
        assert "Sampling profiler" in out
        assert collapsed.exists()

    def test_report_hotspots_from_trace(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-AR-RC", "6", "-o", str(src)])
        assert main(["verify", str(src), "--profile-sample",
                     "--profile-interval", "0.001",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace), "--hotspots"]) == 0
        assert "Sampling profiler" in capsys.readouterr().out

    def test_report_hotspots_hint_without_profile(self, tmp_path,
                                                  capsys):
        src = tmp_path / "m.aag"
        trace = tmp_path / "run.jsonl"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        main(["verify", str(src), "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["report", str(trace), "--hotspots"]) == 0
        assert "--profile-sample" in capsys.readouterr().out


class TestLintCommand:
    def test_clean_design_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["lint", str(src)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_faulty_design_exits_one_with_ra032(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        main(["inject", str(src), "--kind", "gate-type", "-o", str(bug)])
        assert main(["lint", str(bug)]) == 1
        out = capsys.readouterr().out
        assert "RA032" in out and "dirty" in out

    def test_json_and_sarif_export(self, tmp_path):
        import json

        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        report_json = tmp_path / "lint.json"
        report_sarif = tmp_path / "lint.sarif"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        main(["inject", str(src), "--kind", "wrong-wire", "-o", str(bug)])
        main(["lint", str(bug), "--json", str(report_json),
              "--sarif", str(report_sarif)])
        payload = json.loads(report_json.read_text())
        assert payload["reports"][0]["verdict"] == "dirty"
        codes = [d["code"] for d in payload["reports"][0]["diagnostics"]]
        assert "RA032" in codes
        sarif = json.loads(report_sarif.read_text())
        assert sarif["version"] == "2.1.0"

    def test_unparseable_file_is_a_report_not_a_crash(self, tmp_path, capsys):
        bad = tmp_path / "bad.aag"
        bad.write_text("aag 3 2 0 1 1\n2\n4\n6\n")  # truncated
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RA002" in out

    def test_lint_batch_mixes_clean_and_dirty(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        main(["inject", str(src), "--kind", "input-negation",
              "-o", str(bug)])
        assert main(["lint", str(src), str(bug)]) == 1
        out = capsys.readouterr().out
        assert "clean" in out and "dirty" in out


class TestAnalyzeCli:
    def test_clean_simple_design_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-WT-CL", "6", "-o", str(src)])
        assert main(["analyze", str(src)]) == 0
        out = capsys.readouterr().out
        assert "simple-tree-lookahead" in out
        assert "RS001" in out

    def test_booth_findings_exit_one(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "BP-WT-RC", "6", "-o", str(src)])
        assert main(["analyze", str(src)]) == 1
        out = capsys.readouterr().out
        assert "booth-tree-ripple" in out
        assert "RS020" in out

    def test_unparseable_input_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.aag"
        bad.write_text("not aiger\n")
        assert main(["analyze", str(bad)]) == 3
        out = capsys.readouterr().out
        assert "RA001" in out

    def test_json_and_sarif_export(self, tmp_path):
        import json

        src = tmp_path / "m.aag"
        arch_json = tmp_path / "arch.json"
        arch_sarif = tmp_path / "arch.sarif"
        main(["generate", "SP-AR-RC", "6", "-o", str(src)])
        main(["analyze", str(src), "--json", str(arch_json),
              "--sarif", str(arch_sarif)])
        payload = json.loads(arch_json.read_text())
        assert payload["command"] == "analyze"
        record = payload["reports"][0]
        assert record["architecture"] == "simple-array-ripple"
        assert record["stages"]["fsa"]["label"] == "ripple"
        sarif = json.loads(arch_sarif.read_text())
        assert sarif["version"] == "2.1.0"
        assert any(res["ruleId"] == "RS001"
                   for res in sarif["runs"][0]["results"])

    def test_verify_auto_tune_flag(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--auto-tune"]) == 0


class TestVerifyPreflightCli:
    def test_invalid_design_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.aag"
        bad.write_text("aag 3 2 0 1 1\n2\n4\n6\n")
        assert main(["verify", str(bad)]) == 3
        err = capsys.readouterr().err
        assert "RA002" in err

    def test_check_invariants_flag(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        assert main(["verify", str(src), "--check-invariants"]) == 0
        assert "correct" in capsys.readouterr().out

    def test_batch_skips_invalid_inputs(self, tmp_path, capsys):
        src = tmp_path / "m.aag"
        bad = tmp_path / "bad.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        bad.write_text("not an aiger file\n")
        assert main(["verify", str(src), str(bad)]) == 3
        out = capsys.readouterr().out
        assert "correct" in out and "invalid" in out


class TestServiceCli:
    """The verification-as-a-service surface of the CLI."""

    def _designs(self, tmp_path):
        src = tmp_path / "m.aag"
        bug = tmp_path / "bug.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(src)])
        main(["inject", str(src), "--kind", "gate-type", "-o", str(bug)])
        return src, bug

    def test_verify_db_replays_from_cache(self, tmp_path, capsys):
        src, _ = self._designs(tmp_path)
        db = tmp_path / "runs.db"
        assert main(["verify", str(src), "--db", str(db)]) == 0
        assert "[cache hit]" not in capsys.readouterr().out
        assert main(["verify", str(src), "--db", str(db)]) == 0
        assert "[cache hit]" in capsys.readouterr().out

    def test_no_cache_forces_a_fresh_run(self, tmp_path, capsys):
        src, _ = self._designs(tmp_path)
        db = tmp_path / "runs.db"
        main(["verify", str(src), "--db", str(db)])
        capsys.readouterr()
        assert main(["verify", str(src), "--db", str(db),
                     "--no-cache"]) == 0
        assert "[cache hit]" not in capsys.readouterr().out

    def test_batch_consults_cache_before_spawning(self, tmp_path, capsys):
        import json

        src, bug = self._designs(tmp_path)
        db = tmp_path / "runs.db"
        out_json = tmp_path / "batch.json"
        assert main(["verify", str(src), "--db", str(db)]) == 0
        capsys.readouterr()
        assert main(["verify", str(src), str(bug), "--db", str(db),
                     "--json", str(out_json)]) == 1
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert "[cache hit]" in lines[0]      # replayed, input order kept
        assert "[cache hit]" not in lines[1]  # the fault is a miss
        records = json.loads(out_json.read_text())["records"]
        assert [r["input"] for r in records] == [str(src), str(bug)]
        assert records[0]["cache_hit"] is True
        assert records[1]["cache_hit"] is False
        assert records[1]["status"] == "buggy"

    def test_submit_and_status_against_a_live_service(self, tmp_path,
                                                      capsys):
        import threading

        from repro.service.client import ServiceClient
        from repro.service.core import VerificationService
        from repro.service.server import run_server

        src, bug = self._designs(tmp_path)
        service = VerificationService(db=str(tmp_path / "runs.db"),
                                      workers=1, use_processes=False)
        box = {}
        up = threading.Event()

        def on_ready(server):
            box["port"] = server.port
            up.set()

        thread = threading.Thread(target=run_server, args=(service,),
                                  kwargs={"port": 0, "ready": on_ready},
                                  daemon=True)
        thread.start()
        assert up.wait(timeout=30)
        port = str(box["port"])
        capsys.readouterr()
        try:
            assert main(["submit", str(src), str(bug),
                         "--port", port]) == 1
            out = capsys.readouterr().out
            assert "correct" in out and "buggy" in out
            assert "counterexample" in out
            # the resubmission replays from the cache inside the POST
            assert main(["submit", str(src), "--port", port]) == 0
            assert "[cache hit]" in capsys.readouterr().out
            assert main(["status", "--port", port]) == 0
            out = capsys.readouterr().out
            assert "job-0001" in out and "1 hit(s)" in out
            assert main(["status", "job-0001", "--port", port]) == 0
            assert "done" in capsys.readouterr().out
            assert main(["status", "job-0001", "--port", port,
                         "--events"]) == 0
            assert '"ev": "run_end"' in capsys.readouterr().out
        finally:
            ServiceClient(port=box["port"]).shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_submit_against_a_dead_service_fails_cleanly(self, tmp_path,
                                                         capsys):
        src, _ = self._designs(tmp_path)
        assert main(["submit", str(src), "--port", "1"]) == 2
        assert "submit:" in capsys.readouterr().err
        assert main(["status", "--port", "1"]) == 2
        assert "status:" in capsys.readouterr().err
