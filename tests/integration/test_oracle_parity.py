"""End-to-end parity: the verifier driven by the frozenset oracle.

Runs full verifications twice — once on the production bitmask kernel,
once with every vanishing-rule reduction routed through the independent
frozenset oracle — and demands bit-identical verdicts, remainders and
per-step ``SP_i`` traces (the Fig. 5 curves).  Because the dynamic
engine's accept/reject decisions feed off exact polynomial sizes, even a
one-monomial divergence anywhere in the pipeline derails the trace and
fails this test.
"""

import pytest

from repro.core.vanishing import VanishingRuleSet
from repro.core.verifier import verify_multiplier
from repro.genmul import generate_multiplier
from repro.genmul.faults import inject_visible_fault
from repro.opt.scripts import optimize
from tests.poly.frozenset_oracle import OracleRuleSet, fs_to_mask, mask_to_fs


def oracle_reduce_products_into(self, out, base, rep_items, coeff_base,
                                depth=0):
    """Drop-in replacement computing every normal form via frozensets.

    Mirrors the kernel's bookkeeping exactly: untriggered products keep
    zero entries (they count toward the attempt-size cap), reduced terms
    pop on cancellation.
    """
    oracle = getattr(self, "_oracle", None)
    if oracle is None or getattr(self, "_oracle_count", -1) != self._count:
        oracle = OracleRuleSet(self)
        self._oracle = oracle
        self._oracle_count = self._count
    trigger = self._trigger_mask
    for rep_mono, rep_coeff in rep_items:
        mono = base | rep_mono
        coeff = coeff_base * rep_coeff
        if not (mono & trigger):
            out[mono] = out.get(mono, 0) + coeff
            continue
        local = {}
        oracle.reduce(mask_to_fs(mono), 1, local, depth)
        for mono_fs, factor in local.items():
            mask = fs_to_mask(mono_fs)
            value = out.get(mask, 0) + coeff * factor
            if value:
                out[mask] = value
            else:
                out.pop(mask, None)


def fingerprint(aig, method):
    result = verify_multiplier(aig, method=method, record_trace=True,
                               monomial_budget=200_000)
    remainder = (result.remainder.to_string()
                 if result.remainder is not None else None)
    return {"status": result.status, "remainder": remainder,
            "sizes": result.sizes()}


def fingerprints_with_and_without_oracle(aig, method):
    reference = fingerprint(aig, method)
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(VanishingRuleSet, "reduce_products_into",
                        oracle_reduce_products_into)
        with_oracle = fingerprint(aig, method)
    return reference, with_oracle


CASES = [
    ("SP-AR-RC", 4, "none"),
    ("SP-DT-LF", 4, "none"),
    ("SP-DT-LF", 4, "dc2"),
    ("SP-WT-CL", 4, "resyn3"),
    ("BP-AR-RC", 4, "none"),
]


@pytest.mark.parametrize("architecture,width,optimization", CASES)
@pytest.mark.parametrize("method", ["dyposub", "static"])
def test_verify_parity(architecture, width, optimization, method):
    aig = optimize(generate_multiplier(architecture, width), optimization)
    reference, with_oracle = fingerprints_with_and_without_oracle(aig, method)
    assert with_oracle["status"] == reference["status"]
    assert with_oracle["remainder"] == reference["remainder"]
    assert with_oracle["sizes"] == reference["sizes"]
    assert reference["status"] == "correct"


def test_buggy_verdict_parity():
    aig = inject_visible_fault(generate_multiplier("SP-AR-RC", 4),
                               kind="gate-type", seed=0)
    reference, with_oracle = fingerprints_with_and_without_oracle(
        aig, "dyposub")
    assert with_oracle["status"] == reference["status"] == "buggy"
    assert with_oracle["sizes"] == reference["sizes"]
