"""Integration tests for Section III: optimization vs multiplier
structure (Example 2 / Fig. 3)."""


from repro.aig.ops import cleanup
from repro.core.atomic import detect_atomic_blocks
from repro.genmul import generate_multiplier
from repro.opt import map3, resyn3


class TestExample2:
    def test_resyn3_reduces_3x3_array_nodes(self):
        """Fig. 3b: the overall number of AIG nodes is reduced by ~15%."""
        aig = cleanup(generate_multiplier("SP-AR-RC", 3))
        optimized = resyn3(aig)
        reduction = 1 - optimized.num_ands / aig.num_ands
        assert 0.05 <= reduction <= 0.5

    def test_3x3_array_has_visible_blocks_before(self):
        """Fig. 3a: atomic blocks are fully visible pre-optimization."""
        aig = cleanup(generate_multiplier("SP-AR-RC", 3))
        blocks = detect_atomic_blocks(aig)
        kinds = sorted(b.kind for b in blocks)
        assert kinds.count("FA") >= 1
        assert kinds.count("HA") >= 2


class TestBoundaryLoss:
    def test_map3_destroys_boundaries_8x8(self, mult_8x8_dadda):
        plain_blocks = detect_atomic_blocks(cleanup(mult_8x8_dadda))
        mapped_blocks = detect_atomic_blocks(map3(mult_8x8_dadda))
        plain_covered = set()
        for blk in plain_blocks:
            plain_covered |= blk.internal
        mapped_covered = set()
        for blk in mapped_blocks:
            mapped_covered |= blk.internal
        # coverage fraction of nodes by atomic blocks drops
        plain_frac = len(plain_covered) / cleanup(mult_8x8_dadda).num_ands
        mapped_aig = map3(mult_8x8_dadda)
        mapped_frac = len(mapped_covered) / mapped_aig.num_ands
        assert mapped_frac < plain_frac

    def test_compact_hit_rate_drops_after_mapping(self, mult_8x8_dadda):
        """The verifier-visible symptom of lost boundaries: the compact
        word-level substitution (rule 1) finds its pattern less often."""
        from repro.core import verify_multiplier

        plain = verify_multiplier(cleanup(mult_8x8_dadda),
                                  monomial_budget=500_000)
        mapped = verify_multiplier(map3(mult_8x8_dadda),
                                   monomial_budget=500_000, time_budget=240)
        assert plain.ok and mapped.ok

        def hit_rate(result):
            hits = result.stats["compact_hits"]
            total = hits + result.stats["compact_misses"]
            return hits / total if total else 0.0

        assert hit_rate(mapped) < hit_rate(plain)

    def test_vanishing_monomials_appear_after_mapping(self, mult_8x8_dadda):
        """Restructured netlists generate (many more) vanishing
        monomials during rewriting."""
        from repro.core import verify_multiplier

        plain = verify_multiplier(cleanup(mult_8x8_dadda),
                                  monomial_budget=500_000)
        mapped = verify_multiplier(map3(mult_8x8_dadda),
                                   monomial_budget=500_000, time_budget=240)
        assert (mapped.stats["vanishing_removed"]
                >= plain.stats["vanishing_removed"])
