"""Certificate-checked soundness battery.

Every verification in this battery is double-checked by the independent
certificate checker: each substitution step is validated against circuit
semantics by exhaustive simulation, and a rule-free replay must reach
the same remainder.  This guards the entire clever machinery (vanishing
rules, implication-derived carry-operator rules, compact substitution,
dynamic ordering) against soundness regressions.
"""

import pytest

from repro.aig.ops import cleanup
from repro.core.certificate import check_certificate
from repro.core.verifier import verify_multiplier
from repro.genmul import generate_multiplier, inject_visible_fault
from repro.opt import map3, resyn3

ARCHITECTURES = [
    "SP-AR-RC", "SP-DT-LF", "SP-WT-CL", "SP-BD-KS", "SP-OS-CU",
    "SP-CP-HC", "SP-DT-CS", "BP-WT-RC", "BPS-AR-RC", "SPS-DT-KS",
]


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_certified_verification(arch):
    aig = cleanup(generate_multiplier(arch, 4))
    signed = arch.startswith(("SPS", "BPS"))
    result = verify_multiplier(aig, 4, 4, signed=signed,
                               record_certificate=True,
                               monomial_budget=500_000, time_budget=120)
    assert result.ok, (arch, result.status)
    assert check_certificate(aig, result.stats["certificate"])


@pytest.mark.parametrize("optimize", [resyn3, map3],
                         ids=["resyn3", "map3"])
def test_certified_optimized(optimize):
    aig = cleanup(optimize(generate_multiplier("SP-DT-LF", 4)))
    result = verify_multiplier(aig, record_certificate=True)
    assert result.ok
    assert check_certificate(aig, result.stats["certificate"])


def test_certified_buggy():
    aig = cleanup(inject_visible_fault(generate_multiplier("SP-WT-KS", 4),
                                       seed=8))
    result = verify_multiplier(aig, record_certificate=True)
    assert result.status == "buggy"
    assert check_certificate(aig, result.stats["certificate"])
