"""Tests for the result objects and error types."""


from repro.core.result import VerificationResult
from repro.errors import (
    AigError,
    BudgetExceeded,
    GeneratorError,
    NetlistError,
    PolynomialError,
    ReproError,
    VerificationError,
)


class TestVerificationResult:
    def test_ok_flag(self):
        assert VerificationResult(status="correct", method="m").ok
        assert not VerificationResult(status="buggy", method="m").ok
        assert not VerificationResult(status="timeout", method="m").ok

    def test_timed_out_flag(self):
        assert VerificationResult(status="timeout", method="m").timed_out
        assert not VerificationResult(status="correct", method="m").timed_out

    def test_summary_contains_stats(self):
        result = VerificationResult(
            status="correct", method="dyposub", seconds=1.5,
            stats={"nodes": 100, "max_poly_size": 42, "steps": 7})
        text = result.summary()
        assert "dyposub" in text
        assert "correct" in text
        assert "nodes=100" in text
        assert "max_poly_size=42" in text

    def test_summary_without_stats(self):
        result = VerificationResult(status="buggy", method="static")
        assert "buggy" in result.summary()


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (AigError, NetlistError, GeneratorError,
                    PolynomialError, VerificationError, BudgetExceeded):
            assert issubclass(cls, ReproError)

    def test_budget_exceeded_is_verification_error(self):
        assert issubclass(BudgetExceeded, VerificationError)

    def test_budget_exceeded_payload(self):
        exc = BudgetExceeded("boom", kind="time", steps_done=5, max_size=99)
        assert exc.kind == "time"
        assert exc.steps_done == 5
        assert exc.max_size == 99

    def test_budget_exceeded_defaults(self):
        exc = BudgetExceeded("boom")
        assert exc.kind == "monomials"
