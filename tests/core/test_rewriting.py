"""Tests for the rewriting engine: candidacy rule, substitution,
compact matching, budgets, and both orders."""

import pytest

from repro.aig.ops import cleanup
from repro.core.atomic import detect_atomic_blocks
from repro.core.cones import build_components
from repro.core.dynamic import dynamic_backward_rewriting
from repro.core.rewriting import RewritingEngine
from repro.core.spec import multiplier_specification
from repro.core.vanishing import VanishingRuleSet
from repro.errors import BudgetExceeded, VerificationError
from repro.genmul import generate_multiplier
from repro.poly import Polynomial


def make_engine(arch="SP-AR-RC", width=4, blocks=True, **kwargs):
    aig = cleanup(generate_multiplier(arch, width))
    detected = detect_atomic_blocks(aig) if blocks else []
    components, vanishing = build_components(aig, detected)
    spec = multiplier_specification(aig, width, width)
    return RewritingEngine(spec, components, vanishing, **kwargs)


class TestCandidacy:
    def test_initial_candidates_have_no_pending_consumers(self):
        engine = make_engine()
        for index in engine.candidates():
            comp = engine.components[index]
            for other in engine.components.values():
                if other.index == index:
                    continue
                overlap = set(comp.output_vars) & set(other.input_vars)
                assert not overlap, \
                    f"{comp.describe()} feeds {other.describe()}"

    def test_non_candidate_rejected(self):
        engine = make_engine()
        non_candidates = (set(engine.components) - set(engine.candidates()))
        if not non_candidates:
            pytest.skip("all components are initial candidates")
        with pytest.raises(VerificationError):
            engine.attempt(min(non_candidates))

    def test_each_component_substituted_exactly_once(self):
        engine = make_engine()
        total = len(engine.components)
        engine.run_static()
        assert engine.steps == total
        assert engine.finished()


class TestStaticOrder:
    def test_static_reaches_zero_remainder(self):
        engine = make_engine()
        remainder = engine.run_static()
        assert remainder.is_zero()

    def test_static_on_dadda(self):
        engine = make_engine("SP-DT-LF")
        assert engine.run_static().is_zero()

    def test_trace_recording(self):
        engine = make_engine(record_trace=True)
        engine.run_static()
        assert len(engine.trace) == engine.steps
        assert max(engine.trace.sizes()) <= engine.max_size
        # structured records carry the committed component and step index
        assert [record.step for record in engine.trace] == list(
            range(1, engine.steps + 1))
        assert all(record.threshold is None for record in engine.trace)


class TestDynamicOrder:
    def test_dynamic_reaches_zero_remainder(self):
        engine = make_engine()
        assert dynamic_backward_rewriting(engine).is_zero()

    def test_dynamic_peak_not_worse_than_static(self):
        static_engine = make_engine("SP-DT-LF")
        static_engine.run_static()
        dynamic_engine = make_engine("SP-DT-LF")
        dynamic_backward_rewriting(dynamic_engine)
        assert dynamic_engine.max_size <= static_engine.max_size

    def test_threshold_must_be_positive(self):
        engine = make_engine()
        with pytest.raises(VerificationError):
            dynamic_backward_rewriting(engine, initial_threshold=0)

    def test_occurrence_counts_match_polynomial(self):
        engine = make_engine()
        counts = engine.occurrence_counts()
        for index, total in counts.items():
            comp = engine.components[index]
            direct = sum(engine.sp.occurrences(v) for v in comp.output_vars)
            assert total == direct


class TestCompactSubstitution:
    def test_compact_preserves_remainder(self):
        """With and without compact matching the final remainder must be
        identical (zero) — rule 1 is an optimization, not a semantic
        change."""
        engine = make_engine("SP-AR-RC")
        assert dynamic_backward_rewriting(engine).is_zero()
        assert engine.compact_hits > 0

        engine2 = make_engine("SP-AR-RC")
        for comp in engine2.components.values():
            comp.compact = None
        assert dynamic_backward_rewriting(engine2).is_zero()

    def test_compact_hit_shrinks_or_keeps_size(self):
        engine = make_engine("SP-AR-RC")
        # run until the first compact hit and check the growth there
        while not engine.finished():
            before_hits = engine.compact_hits
            counts = engine.occurrence_counts()
            index = min(counts, key=lambda i: (counts[i], i))
            old_size = len(engine.sp)
            new_sp = engine.attempt(index)
            engine.commit(index, new_sp)
            if engine.compact_hits > before_hits:
                assert len(new_sp) <= old_size + 2
                return
        pytest.skip("no compact hit occurred")


class TestBudgets:
    def test_monomial_budget_trips(self):
        engine = make_engine("SP-DT-LF", monomial_budget=10)
        with pytest.raises(BudgetExceeded) as info:
            engine.run_static()
        assert info.value.kind == "monomials"

    def test_time_budget_trips(self):
        engine = make_engine("SP-DT-LF", width=6, time_budget=1e-9)
        with pytest.raises(BudgetExceeded) as info:
            dynamic_backward_rewriting(engine)
        assert info.value.kind == "time"

    def test_budget_error_carries_progress(self):
        engine = make_engine("SP-DT-LF", monomial_budget=10)
        try:
            engine.run_static()
        except BudgetExceeded as exc:
            assert exc.max_size > 10
            assert exc.steps_done >= 0


class TestInvariants:
    def test_duplicate_output_vars_rejected(self):
        from repro.core.components import cone_component

        poly = Polynomial.variable(1)
        comps = [cone_component(0, "FFC", 5, (1,), poly, {5}),
                 cone_component(1, "FFC", 5, (1,), poly, {5})]
        with pytest.raises(VerificationError):
            RewritingEngine(Polynomial.zero(), comps, VanishingRuleSet())

    def test_remainder_support_is_inputs_only(self):
        engine = make_engine("SP-WT-CL")
        remainder = dynamic_backward_rewriting(engine)
        assert remainder.is_zero()
        # also check mid-run invariant: sp support never contains retired vars
        engine2 = make_engine("SP-AR-RC")
        retired = set()
        while not engine2.finished():
            counts = engine2.occurrence_counts()
            index = min(counts, key=lambda i: (counts[i], i))
            comp = engine2.components[index]
            engine2.commit(index, engine2.attempt(index))
            retired.update(comp.output_vars)
            assert not (engine2.sp.support() & retired)
