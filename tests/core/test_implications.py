"""Tests for implication-derived vanishing rules (carry operators)."""


import pytest

from repro.aig.aig import Aig, lit_var
from repro.aig.ops import cleanup
from repro.aig.simulate import node_values
from repro.core.atomic import detect_atomic_blocks
from repro.core.cones import build_components
from repro.core.implications import add_implication_rules, derive_zero_pairs
from repro.core.vanishing import rules_from_blocks
from repro.genmul import generate_multiplier


def check_pairs_semantically(aig, pairs, max_inputs=12):
    """Every derived pair must hold on every input assignment."""
    from repro.aig.truth import var_pattern

    n = aig.num_inputs
    assert n <= max_inputs
    width = 1 << n
    patterns = {v: var_pattern(k, n) for k, v in enumerate(aig.inputs)}
    values = node_values(aig, patterns, width=width)
    mask = (1 << width) - 1
    for (u, pu), (v, pv) in pairs:
        u_vec = values[u] ^ (mask if pu else 0)
        v_vec = values[v] ^ (mask if pv else 0)
        assert u_vec & v_vec == 0, f"pair ({u},{pu})x({v},{pv}) violated"


class TestPrefixCarryOperators:
    def test_gp_pairs_derived_for_prefix_adder(self):
        """The Kogge-Stone G/P pairs must be found: G_span * P_span = 0
        for every prefix span — the paper's carry-operator relations."""
        from repro.genmul.prefix import kogge_stone

        aig = Aig()
        a_bits = aig.add_inputs(4, prefix="a")
        b_bits = aig.add_inputs(4, prefix="b")
        g = [aig.and_(x, y) for x, y in zip(a_bits, b_bits)]
        p = [aig.xor_(x, y) for x, y in zip(a_bits, b_bits)]
        prefixes = kogge_stone(aig, list(zip(g, p)))
        for g_out, p_out in prefixes:
            aig.add_output(g_out)
            aig.add_output(p_out)
        aig = cleanup(aig)
        blocks = detect_atomic_blocks(aig)
        interesting = set(aig.inputs) | set(aig.and_vars())
        pairs = derive_zero_pairs(aig, blocks, interesting)
        check_pairs_semantically(aig, pairs)
        # the top-span (G, P) outputs must form a derived pair
        top_g = lit_var(aig.outputs[-2])
        top_p = lit_var(aig.outputs[-1])
        covered = {frozenset((u, v)) for (u, _pu), (v, _pv) in pairs}
        assert frozenset((top_g, top_p)) in covered


class TestSoundness:
    @pytest.mark.parametrize("arch", ["SP-DT-KS", "SP-WT-BK", "SP-AR-CL"])
    def test_all_derived_pairs_hold(self, arch):
        aig = cleanup(generate_multiplier(arch, 4))
        blocks = detect_atomic_blocks(aig)
        components, _rules = build_components(aig, blocks)
        interesting = set(aig.inputs)
        for comp in components:
            interesting.update(comp.output_vars)
        pairs = derive_zero_pairs(aig, blocks, interesting)
        assert pairs, "expected some derived pairs"
        check_pairs_semantically(aig, pairs)

    def test_verification_agrees_with_certificate_replay(self):
        """The ultimate soundness oracle: with implication rules active,
        the final remainder must still match the rule-free replay."""
        from repro.core.certificate import check_certificate
        from repro.core.verifier import verify_multiplier

        aig = cleanup(generate_multiplier("SP-DT-KS", 4))
        result = verify_multiplier(aig, record_certificate=True)
        assert result.ok
        assert check_certificate(aig, result.stats["certificate"])

    def test_buggy_still_rejected_with_implications(self, mult_4x4_dadda):
        from repro.core.verifier import verify_multiplier
        from repro.genmul import inject_visible_fault

        buggy = inject_visible_fault(mult_4x4_dadda, seed=31)
        assert verify_multiplier(buggy).status == "buggy"


class TestIntegration:
    def test_rules_added_to_set(self):
        aig = cleanup(generate_multiplier("SP-DT-KS", 4))
        blocks = detect_atomic_blocks(aig)
        components, _ = build_components(aig, blocks)
        rules = rules_from_blocks(blocks)
        before = len(rules)
        added = add_implication_rules(rules, aig, blocks, components)
        assert added > 0
        assert len(rules) == before + added

    def test_ablation_switch(self, mult_4x4_dadda):
        from repro.core.verifier import verify_multiplier

        with_imp = verify_multiplier(mult_4x4_dadda, use_implications=True)
        without = verify_multiplier(mult_4x4_dadda, use_implications=False)
        assert with_imp.ok and without.ok
        assert with_imp.stats["implication_rules"] > 0
        assert without.stats["implication_rules"] == 0
