"""End-to-end tests of Algorithm 1 (verify_multiplier)."""

import pytest

from repro.core import verify_multiplier
from repro.core.counterexample import find_nonzero_assignment
from repro.errors import ConfigError, VerificationError
from repro.genmul import (
    MultiplierSpec,
    generate_multiplier,
    inject_visible_fault,
    multiply_reference,
)
from repro.poly import Polynomial


class TestCorrectDesigns:
    @pytest.mark.parametrize("arch", [
        "SP-AR-RC", "SP-DT-LF", "SP-WT-CL", "SP-BD-KS", "SP-OS-CU",
        "SP-AR-CK", "SP-WT-BK",
    ])
    def test_simple_ppg_4x4(self, arch):
        result = verify_multiplier(generate_multiplier(arch, 4))
        assert result.ok, (arch, result.status)
        assert result.remainder.is_zero()

    @pytest.mark.parametrize("arch", ["BP-AR-RC", "BP-WT-RC"])
    def test_booth_4x4(self, arch):
        result = verify_multiplier(generate_multiplier(arch, 4),
                                   monomial_budget=500_000, time_budget=120)
        assert result.ok, (arch, result.status)

    def test_rectangular(self):
        aig = generate_multiplier("SP-DT-KS", 5, 3)
        result = verify_multiplier(aig, width_a=5, width_b=3)
        assert result.ok

    def test_signed(self):
        aig = generate_multiplier("SPS-AR-RC", 4)
        result = verify_multiplier(aig, 4, 4, signed=True)
        assert result.ok

    def test_both_methods_agree(self, mult_4x4_dadda):
        dynamic = verify_multiplier(mult_4x4_dadda, method="dyposub")
        static = verify_multiplier(mult_4x4_dadda, method="static")
        assert dynamic.ok and static.ok

    def test_stats_populated(self, mult_4x4_dadda):
        result = verify_multiplier(mult_4x4_dadda, record_trace=True)
        stats = result.stats
        for key in ("nodes", "components", "atomic_blocks", "max_poly_size",
                    "steps", "vanishing_removed", "compact_hits"):
            assert key in stats
        assert stats["steps"] == stats["components"]
        assert len(result.trace) == stats["steps"]
        assert "correct" in result.summary()


class TestBuggyDesigns:
    @pytest.mark.parametrize("kind", ["gate-type", "input-negation",
                                      "output-negation", "wrong-wire"])
    def test_fault_rejected_with_counterexample(self, kind, mult_4x4_dadda):
        buggy = inject_visible_fault(mult_4x4_dadda, kind=kind, seed=23)
        result = verify_multiplier(buggy)
        assert result.status == "buggy"
        assert result.counterexample is not None
        # the counterexample must actually expose the bug in simulation
        spec = MultiplierSpec.from_name("SP-DT-LF", 4, 4)
        a = result.stats["counterexample_a"]
        b = result.stats["counterexample_b"]
        from repro.aig.simulate import outputs_as_int, simulate_words

        a_lits = [2 * v for v in buggy.inputs[:4]]
        b_lits = [2 * v for v in buggy.inputs[4:]]
        got = outputs_as_int(simulate_words(buggy, [(a, a_lits), (b, b_lits)]))
        assert got != multiply_reference(spec, a, b)

    def test_static_also_rejects(self, mult_4x4_array):
        buggy = inject_visible_fault(mult_4x4_array, seed=3)
        result = verify_multiplier(buggy, method="static")
        assert result.status == "buggy"

    def test_counterexample_optional(self, mult_4x4_array):
        buggy = inject_visible_fault(mult_4x4_array, seed=3)
        result = verify_multiplier(buggy, want_counterexample=False)
        assert result.status == "buggy"
        assert result.counterexample is None


class TestBudgetsAndOptions:
    def test_timeout_reported_not_raised(self, mult_8x8_dadda):
        result = verify_multiplier(mult_8x8_dadda, monomial_budget=5)
        assert result.timed_out
        assert result.stats["budget_kind"] == "monomials"

    def test_unknown_method_rejected(self, mult_4x4_array):
        # validated at config time, before any pipeline work
        with pytest.raises(ConfigError):
            verify_multiplier(mult_4x4_array, method="bdd")

    def test_unknown_ring_rejected(self, mult_4x4_array):
        with pytest.raises(ConfigError):
            verify_multiplier(mult_4x4_array, ring="float")
        with pytest.raises(ConfigError):
            verify_multiplier(mult_4x4_array, ring="modular:4")
        with pytest.raises(ConfigError):
            verify_multiplier(mult_4x4_array, primes=0)

    def test_odd_inputs_need_explicit_widths(self):
        aig = generate_multiplier("SP-AR-RC", 3, 2)
        with pytest.raises(VerificationError):
            verify_multiplier(aig)
        assert verify_multiplier(aig, width_a=3, width_b=2).ok

    def test_ablation_switches(self, mult_4x4_dadda):
        for kwargs in ({"use_atomic_blocks": False},
                       {"use_vanishing": False},
                       {"use_compact": False},
                       {"extended_rules": False}):
            result = verify_multiplier(mult_4x4_dadda,
                                       monomial_budget=500_000, **kwargs)
            assert result.ok, kwargs


class TestCounterexampleExtraction:
    def test_nonzero_point_found(self):
        poly = Polynomial.from_terms([(1, (1, 2)), (-1, (3,))])
        assignment = find_nonzero_assignment(poly)
        full = {v: assignment.get(v, 0) for v in (1, 2, 3)}
        assert poly.evaluate(full) != 0

    def test_zero_polynomial_rejected(self):
        with pytest.raises(VerificationError):
            find_nonzero_assignment(Polynomial.zero())

    def test_constant_polynomial(self):
        assignment = find_nonzero_assignment(Polynomial.constant(5))
        assert assignment == {}

    def test_cancellation_heavy_polynomial(self):
        # p = x*y - x: zero unless x=1, y=0
        poly = Polynomial.from_terms([(1, (1, 2)), (-1, (1,))])
        assignment = find_nonzero_assignment(poly)
        full = {v: assignment.get(v, 0) for v in (1, 2)}
        assert poly.evaluate(full) != 0
