"""Tests for specification and gate polynomials."""

import itertools

import pytest

from repro.aig.aig import Aig, lit_neg, lit_var
from repro.aig.simulate import node_values
from repro.core.gatepoly import (
    cone_polynomial,
    literal_polynomial,
    node_tail_polynomial,
)
from repro.core.spec import (
    multiplier_specification,
    operand_word_polynomial,
    output_word_polynomial,
)
from repro.errors import VerificationError
from repro.genmul import generate_multiplier
from repro.poly import Polynomial


def full_assignment(aig, input_bits):
    values = node_values(aig, input_bits)
    return {v: values[v] for v in range(aig.num_vars)}


class TestLiteralAndNodePolynomials:
    def test_literal_polynomials(self):
        assert literal_polynomial(6) == Polynomial.variable(3)
        assert literal_polynomial(7) == 1 - Polynomial.variable(3)
        assert literal_polynomial(0) == Polynomial.zero()
        assert literal_polynomial(1) == Polynomial.one()

    def test_five_cases_of_equation_1(self):
        """The node polynomial must match eq. (1) for all polarity
        combinations."""
        aig = Aig()
        a, b = aig.add_inputs(2)
        av, bv = lit_var(a), lit_var(b)
        x = Polynomial.variable(av)
        y = Polynomial.variable(bv)
        cases = [
            (aig.add_and(a, b), x * y),
            (aig.add_and(lit_neg(a), b), y - x * y),
            (aig.add_and(a, lit_neg(b)), x - x * y),
            (aig.add_and(lit_neg(a), lit_neg(b)), 1 - x - y + x * y),
        ]
        for literal, expected in cases:
            assert node_tail_polynomial(aig, lit_var(literal)) == expected

    def test_tail_agrees_with_simulation(self, mult_4x4_array):
        aig = mult_4x4_array
        for bits in ([0] * 8, [1] * 8, [1, 0, 1, 0, 0, 1, 1, 0]):
            assignment = full_assignment(aig, bits)
            for v in list(aig.and_vars())[:30]:
                tail = node_tail_polynomial(aig, v)
                assert tail.evaluate(assignment) == assignment[v]


class TestConePolynomial:
    def test_xor_cone_polynomial(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        x = aig.xor_(a, b)
        var = lit_var(x)
        poly = cone_polynomial(aig, var, {lit_var(a), lit_var(b)})
        # the var computes XNOR: 1 - a - b + 2ab... check by evaluation
        for av, bv in itertools.product((0, 1), repeat=2):
            want = 1 - ((av + bv) % 2)
            assert poly.evaluate({lit_var(a): av, lit_var(b): bv}) == want

    def test_cone_polynomial_only_uses_leaves(self, mult_4x4_dadda):
        aig = mult_4x4_dadda
        from repro.aig.cuts import enumerate_cuts

        cuts = enumerate_cuts(aig, k=3, limit=6)
        checked = 0
        for v in list(aig.and_vars())[-10:]:
            for cut in cuts[v]:
                if cut == (v,):
                    continue
                poly = cone_polynomial(aig, v, cut)
                assert poly.support() <= set(cut)
                checked += 1
        assert checked


class TestSpecificationPolynomial:
    def test_word_polynomials(self):
        assert operand_word_polynomial([1, 2, 3]) == (
            Polynomial.variable(1) + 2 * Polynomial.variable(2)
            + 4 * Polynomial.variable(3))
        signed = operand_word_polynomial([1, 2], signed=True)
        assert signed == Polynomial.variable(1) - 2 * Polynomial.variable(2)

    def test_spec_vanishes_exactly_on_consistent_assignments(
            self, mult_4x4_array):
        aig = mult_4x4_array
        spec = multiplier_specification(aig, 4, 4)
        for a, b in [(0, 0), (3, 5), (15, 15), (7, 9), (12, 1)]:
            bits = [(a >> k) & 1 for k in range(4)] + \
                   [(b >> k) & 1 for k in range(4)]
            assignment = full_assignment(aig, bits)
            assert spec.evaluate(assignment) == 0

    def test_spec_nonzero_on_buggy(self, mult_4x4_array):
        from repro.genmul import inject_visible_fault

        buggy = inject_visible_fault(mult_4x4_array, seed=7)
        spec = multiplier_specification(buggy, 4, 4)
        hits = 0
        for a in range(16):
            for b in range(16):
                bits = [(a >> k) & 1 for k in range(4)] + \
                       [(b >> k) & 1 for k in range(4)]
                assignment = full_assignment(buggy, bits)
                if spec.evaluate(assignment) != 0:
                    hits += 1
        assert hits > 0

    def test_signed_specification(self):
        aig = generate_multiplier("SPS-AR-RC", 3)
        spec = multiplier_specification(aig, 3, 3, signed=True)
        for a in range(8):
            for b in range(8):
                bits = [(a >> k) & 1 for k in range(3)] + \
                       [(b >> k) & 1 for k in range(3)]
                assignment = full_assignment(aig, bits)
                assert spec.evaluate(assignment) == 0, (a, b)

    def test_width_validation(self, mult_4x4_array):
        with pytest.raises(VerificationError):
            multiplier_specification(mult_4x4_array, 3, 3)
        with pytest.raises(VerificationError):
            multiplier_specification(mult_4x4_array, 8, 0)

    def test_output_word_handles_complemented_outputs(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        aig.add_output(lit_neg(aig.and_(a, b)))
        poly = output_word_polynomial(aig)
        assignment = full_assignment(aig, [1, 1])
        assert poly.evaluate(assignment) == 0
        assignment = full_assignment(aig, [0, 1])
        assert poly.evaluate(assignment) == 1
