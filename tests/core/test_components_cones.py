"""Tests for component construction and the cone partition."""

import itertools

import pytest

from repro.aig.aig import Aig
from repro.aig.simulate import node_values
from repro.core.atomic import detect_atomic_blocks
from repro.core.components import atomic_block_component, cone_component
from repro.core.cones import build_components
from repro.genmul import generate_multiplier
from repro.poly import Polynomial


def consistent_assignment(aig, input_bits):
    values = node_values(aig, input_bits)
    return {v: values[v] for v in range(aig.num_vars)}


class TestAtomicBlockComponent:
    @pytest.fixture()
    def fa_component(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(x, y, z)
        aig.add_output(s)
        aig.add_output(c)
        blk = [b for b in detect_atomic_blocks(aig) if b.kind == "FA"][0]
        return aig, blk, atomic_block_component(0, blk)

    def test_substitutions_are_exact(self, fa_component):
        aig, blk, comp = fa_component
        for bits in itertools.product((0, 1), repeat=3):
            assignment = consistent_assignment(aig, list(bits))
            for var, poly in comp.substitutions.items():
                assert poly.evaluate(assignment) == assignment[var], \
                    (blk.describe(), bits, var)

    def test_compact_relation_is_exact(self, fa_component):
        aig, blk, comp = fa_component
        g_coeffs, f_poly = comp.compact
        for bits in itertools.product((0, 1), repeat=3):
            assignment = consistent_assignment(aig, list(bits))
            lhs = sum(coeff * assignment[var]
                      for var, coeff in g_coeffs.items())
            assert lhs == f_poly.evaluate(assignment)

    def test_sum_substituted_before_carry(self, fa_component):
        _aig, blk, comp = fa_component
        order = list(comp.substitutions)
        assert order[0] == blk.sum_var
        assert order[1] == blk.carry_var

    def test_sum_replacement_is_linear(self, fa_component):
        _aig, blk, comp = fa_component
        assert comp.substitutions[blk.sum_var].degree() <= 1

    def test_describe(self, fa_component):
        _aig, _blk, comp = fa_component
        assert comp.describe().startswith("FA#0(")
        assert comp.is_atomic


class TestConeComponent:
    def test_single_output(self):
        poly = Polynomial.variable(2) * Polynomial.variable(3)
        comp = cone_component(4, "FFC", 9, (3, 2), poly, {9})
        assert comp.output_vars == (9,)
        assert comp.input_vars == (2, 3)
        assert comp.compact is None
        assert not comp.is_atomic


class TestPartition:
    @pytest.mark.parametrize("arch", ["SP-AR-RC", "SP-DT-LF", "BP-WT-RC"])
    def test_partition_covers_all_nodes(self, arch):
        from repro.aig.ops import cleanup

        aig = cleanup(generate_multiplier(arch, 4))
        blocks = detect_atomic_blocks(aig)
        components, _rules = build_components(aig, blocks)
        covered = set()
        for comp in components:
            assert not (comp.internal & covered), "components overlap"
            covered |= comp.internal
        assert covered == set(aig.and_vars())

    def test_each_output_var_owned_once(self, mult_4x4_dadda):
        from repro.aig.ops import cleanup

        aig = cleanup(mult_4x4_dadda)
        components, _ = build_components(aig, detect_atomic_blocks(aig))
        owners = {}
        for comp in components:
            for var in comp.output_vars:
                assert var not in owners
                owners[var] = comp.index

    def test_component_polynomials_are_exact(self, mult_4x4_array):
        from repro.aig.ops import cleanup

        aig = cleanup(mult_4x4_array)
        components, _ = build_components(aig, detect_atomic_blocks(aig))
        for bits in ([0] * 8, [1] * 8, [1, 0, 0, 1, 1, 1, 0, 0]):
            assignment = consistent_assignment(aig, bits)
            for comp in components:
                for var, poly in comp.substitutions.items():
                    assert poly.evaluate(assignment) == assignment[var], \
                        comp.describe()

    def test_cgc_classification(self, mult_4x4_dadda):
        """At least one cone consuming both HA outputs must be marked as
        a converging gate cone in a Dadda multiplier."""
        from repro.aig.ops import cleanup

        aig = cleanup(mult_4x4_dadda)
        components, _ = build_components(aig, detect_atomic_blocks(aig))
        kinds = {comp.kind for comp in components}
        assert "FFC" in kinds
        assert {"HA", "FA"} & kinds

    def test_no_blocks_degenerates_to_cones(self, mult_4x4_array):
        from repro.aig.ops import cleanup

        aig = cleanup(mult_4x4_array)
        components, _ = build_components(aig, [])
        assert all(not comp.is_atomic for comp in components)
        covered = set()
        for comp in components:
            covered |= comp.internal
        assert covered == set(aig.and_vars())
