"""Tests for proof-certificate generation and independent checking."""

import pytest

from repro.core import verify_multiplier
from repro.core.certificate import (
    Certificate,
    CertificateError,
    check_certificate,
    certified_verify,
)
from repro.aig.ops import cleanup
from repro.genmul import generate_multiplier, inject_visible_fault
from repro.poly import Polynomial


def certificate_for(aig, **kwargs):
    result = verify_multiplier(aig, record_certificate=True, **kwargs)
    return result, result.stats["certificate"]


class TestGeneration:
    def test_certificate_recorded(self, mult_4x4_array):
        result, cert = certificate_for(cleanup(mult_4x4_array))
        assert result.ok
        assert cert.num_steps > 0
        assert cert.remainder.is_zero()
        # one step per component output
        assert cert.num_steps >= result.stats["components"]

    def test_serialization(self, mult_4x4_array):
        _result, cert = certificate_for(cleanup(mult_4x4_array))
        text = cert.to_text()
        assert text.startswith("; certificate")
        assert "spec " in text
        assert "remainder 0" in text
        assert text.count("sub v") == cert.num_steps


class TestChecking:
    @pytest.mark.parametrize("arch", ["SP-AR-RC", "SP-DT-LF", "SP-WT-CL"])
    def test_valid_certificate_accepted(self, arch):
        aig = cleanup(generate_multiplier(arch, 4))
        _result, cert = certificate_for(aig)
        assert check_certificate(aig, cert)

    def test_replay_matches_rule_based_remainder(self, mult_4x4_dadda):
        """The rule-free replay must reach the same normal form the
        vanishing-rule machinery reached — a strong oracle for the whole
        rule engine."""
        aig = cleanup(mult_4x4_dadda)
        _result, cert = certificate_for(aig)
        assert check_certificate(aig, cert)

    def test_optimized_certificate_accepted(self):
        from repro.opt import resyn3

        aig = cleanup(resyn3(generate_multiplier("SP-DT-LF", 4)))
        _result, cert = certificate_for(aig)
        assert check_certificate(aig, cert)

    def test_buggy_circuit_certificate(self, mult_4x4_array):
        """A buggy run's certificate replays to the same non-zero
        remainder."""
        buggy = cleanup(inject_visible_fault(mult_4x4_array, seed=9))
        result, cert = certificate_for(buggy)
        assert result.status == "buggy"
        assert not cert.remainder.is_zero()
        assert check_certificate(buggy, cert)


class TestTamperDetection:
    @pytest.fixture()
    def valid(self, mult_4x4_array):
        aig = cleanup(mult_4x4_array)
        _result, cert = certificate_for(aig)
        return aig, cert

    def test_tampered_step_rejected(self, valid):
        aig, cert = valid
        var, poly = cert.steps[0]
        bad = Certificate(spec=cert.spec,
                          steps=[(var, poly + 1)] + cert.steps[1:],
                          remainder=cert.remainder)
        with pytest.raises(CertificateError):
            check_certificate(aig, bad)

    def test_tampered_remainder_rejected(self, valid):
        aig, cert = valid
        bad = Certificate(spec=cert.spec, steps=cert.steps,
                          remainder=cert.remainder + 1)
        with pytest.raises(CertificateError):
            check_certificate(aig, bad)

    def test_tampered_spec_rejected(self, valid):
        aig, cert = valid
        bad = Certificate(spec=cert.spec + Polynomial.variable(1),
                          steps=cert.steps, remainder=cert.remainder)
        with pytest.raises(CertificateError):
            check_certificate(aig, bad)

    def test_unknown_variable_rejected(self, valid):
        aig, cert = valid
        bad = Certificate(spec=cert.spec,
                          steps=cert.steps + [(99_999, Polynomial.one())],
                          remainder=cert.remainder)
        with pytest.raises(CertificateError):
            check_certificate(aig, bad)


class TestConvenienceWrapper:
    def test_certified_verify(self, mult_4x4_array):
        result, cert = certified_verify(cleanup(mult_4x4_array))
        assert result.ok
        assert cert is not None
