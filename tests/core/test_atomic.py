"""Tests for reverse engineering (atomic-block detection).

Every detected block is checked *semantically*: the carry/sum relation
``2C + S = X' + Y' (+ Z')`` must hold on all minterms of the block's
cut, under the detected input/output polarities.
"""


import pytest

from repro.aig.aig import Aig
from repro.aig.simulate import node_values
from repro.core.atomic import detect_atomic_blocks
from repro.genmul import generate_multiplier
from repro.opt import map3, resyn3


def assert_block_relation(aig, blk):
    """Exhaustively check a block's word-level relation by simulation."""
    width = 1 << aig.num_inputs
    if aig.num_inputs > 14:
        pytest.skip("block relation check needs small input count")
    patterns = {}
    from repro.aig.truth import var_pattern

    inputs = {v: var_pattern(k, aig.num_inputs)
              for k, v in enumerate(aig.inputs)}
    values = node_values(aig, inputs, width=width)
    mask = (1 << width) - 1
    carry = values[blk.carry_var]
    if blk.carry_negated:
        carry ^= mask
    total = values[blk.sum_var]
    if blk.sum_negated:
        total ^= mask
    for m in range(width):
        c_bit = (carry >> m) & 1
        s_bit = (total >> m) & 1
        rhs = 0
        for var, neg in zip(blk.inputs, blk.input_negations):
            bit = (values[var] >> m) & 1
            rhs += (1 - bit) if neg else bit
        assert 2 * c_bit + s_bit == rhs, blk.describe()


class TestDetectionOnCleanDesigns:
    def test_standalone_full_adder(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(x, y, z)
        aig.add_output(s)
        aig.add_output(c)
        blocks = detect_atomic_blocks(aig)
        assert any(b.kind == "FA" for b in blocks)
        for blk in blocks:
            assert_block_relation(aig, blk)

    def test_standalone_half_adder(self):
        aig = Aig()
        x, y = aig.add_inputs(2)
        s, c = aig.half_adder(x, y)
        aig.add_output(s)
        aig.add_output(c)
        blocks = detect_atomic_blocks(aig)
        assert any(b.kind == "HA" for b in blocks)

    def test_lone_xor_is_not_a_block(self):
        """Phantom rejection: an XOR cone whose AND-part is internal
        only must not be claimed as a half adder."""
        aig = Aig()
        x, y = aig.add_inputs(2)
        nor = aig.nor_(x, y)
        conj = aig.and_(x, y)
        aig.add_output(aig.nor_(nor, conj))   # XOR via AOI form
        blocks = detect_atomic_blocks(aig)
        assert blocks == []

    @pytest.mark.parametrize("arch", ["SP-AR-RC", "SP-DT-LF", "SP-WT-CL"])
    def test_multiplier_blocks_valid(self, arch):
        aig = generate_multiplier(arch, 4)
        blocks = detect_atomic_blocks(aig)
        assert len(blocks) >= 8, arch
        for blk in blocks:
            assert_block_relation(aig, blk)

    def test_blocks_do_not_overlap(self, mult_4x4_dadda):
        blocks = detect_atomic_blocks(mult_4x4_dadda)
        seen = set()
        roots = set()
        for blk in blocks:
            assert not (blk.internal & seen)
            seen |= blk.internal
            for root in blk.output_vars:
                assert root not in roots
                roots.add(root)

    def test_polarity_aware_matching(self):
        """A full adder fed with complemented literals must still be
        detected (the input polarities absorb the complements)."""
        from repro.aig.aig import lit_neg

        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(lit_neg(x), y, lit_neg(z))
        aig.add_output(s)
        aig.add_output(c)
        blocks = detect_atomic_blocks(aig)
        fas = [b for b in blocks if b.kind == "FA"]
        assert fas
        for blk in fas:
            assert any(blk.input_negations), "expected negated inputs"
            assert_block_relation(aig, blk)


class TestDetectionUnderOptimization:
    def test_resyn3_keeps_most_blocks(self, mult_8x8_dadda):
        plain = detect_atomic_blocks(mult_8x8_dadda)
        optimized = detect_atomic_blocks(resyn3(mult_8x8_dadda))
        assert len(optimized) >= len(plain) // 2

    def test_map3_loses_blocks(self, mult_8x8_dadda):
        """The paper's core observation (Example 2): strong optimization
        destroys atomic-block boundaries."""
        plain = detect_atomic_blocks(mult_8x8_dadda)
        mapped = detect_atomic_blocks(map3(mult_8x8_dadda))
        plain_ha = sum(1 for b in plain if b.kind == "HA")
        mapped_ha = sum(1 for b in mapped if b.kind == "HA")
        assert mapped_ha < plain_ha

    def test_optimized_blocks_still_semantically_valid(self, mult_8x8_dadda):
        optimized = resyn3(mult_8x8_dadda)
        blocks = detect_atomic_blocks(optimized)
        # spot-check a sample (full exhaustive check is 2^16 wide)
        for blk in blocks[:5]:
            assert len(blk.inputs) in (2, 3)
            assert blk.carry_var != blk.sum_var


class TestDescribe:
    def test_describe_mentions_polarity(self):
        aig = Aig()
        x, y, z = aig.add_inputs(3)
        s, c = aig.full_adder(x, y, z)
        aig.add_output(s)
        aig.add_output(c)
        blk = detect_atomic_blocks(aig)[0]
        text = blk.describe()
        assert text.startswith(("FA(", "HA("))
        assert "C=" in text and "S=" in text
