"""Tests for vanishing-monomial removal and block-implied pair rules.

Every compiled rule is an identity on consistent circuit assignments;
the tests verify this numerically for all polarity combinations and
check the counters used by the Table I "Vanishing Monomials" column.
"""

import itertools

import pytest

from repro.core.vanishing import (
    VanishingRuleSet,
    literal_product_terms,
    rules_from_blocks,
)
from repro.poly import Polynomial

VC, VS, X, Y, Z, M = 1, 2, 3, 4, 5, 6


def ha_consistent_assignments(carry_neg, sum_neg):
    """All assignments of (vc, vs, x, y) consistent with a half adder."""
    out = []
    for x_val, y_val in itertools.product((0, 1), repeat=2):
        c_true = x_val & y_val
        s_true = x_val ^ y_val
        out.append({
            VC: c_true ^ (1 if carry_neg else 0),
            VS: s_true ^ (1 if sum_neg else 0),
            X: x_val, Y: y_val, Z: 0, M: 1,
        })
    return out


class TestHaProductRules:
    @pytest.mark.parametrize("carry_neg", [False, True])
    @pytest.mark.parametrize("sum_neg", [False, True])
    def test_rule_is_identity(self, carry_neg, sum_neg):
        rules = VanishingRuleSet()
        rules.add_ha_product_rule(VC, carry_neg, VS, sum_neg)
        poly = Polynomial.from_terms([
            (3, (VC, VS)), (2, (VC, VS, M)), (1, (VC,)), (5, ()),
        ])
        reduced = rules.apply(poly)
        for assignment in ha_consistent_assignments(carry_neg, sum_neg):
            assert reduced.evaluate(assignment) == poly.evaluate(assignment)

    def test_positive_pair_deletes(self):
        rules = VanishingRuleSet([(VC, False, VS, False)])
        poly = Polynomial.from_terms([(7, (VC, VS)), (1, (VC,))])
        reduced = rules.apply(poly)
        assert reduced == Polynomial.variable(VC)
        assert rules.removed == 1
        assert rules.total_removed == 1

    def test_mixed_polarity_rewrites(self):
        rules = VanishingRuleSet([(VC, False, VS, True)])
        poly = Polynomial.from_terms([(7, (VC, VS))])
        reduced = rules.apply(poly)
        assert reduced == 7 * Polynomial.variable(VC)
        assert rules.rewritten == 1

    def test_untouched_polynomial_returned_identically(self):
        rules = VanishingRuleSet([(VC, False, VS, False)])
        poly = Polynomial.from_terms([(1, (X, Y))])
        assert rules.apply(poly) is poly

    def test_cascading_rules(self):
        # two HA rules where the first rewrite exposes the second pair
        rules = VanishingRuleSet([(VC, False, VS, True), (X, False, Y, False)])
        poly = Polynomial.from_terms([(1, (VC, VS, X, Y))])
        reduced = rules.apply(poly)
        assert reduced.is_zero()


class TestFaProductRules:
    @pytest.mark.parametrize("carry_neg", [False, True])
    @pytest.mark.parametrize("sum_neg", [False, True])
    @pytest.mark.parametrize("input_negs", [
        (False, False, False), (True, False, False), (True, True, True),
    ])
    def test_rule_is_identity(self, carry_neg, sum_neg, input_negs):
        rules = VanishingRuleSet()
        rules.add_fa_product_rule(
            VC, carry_neg, VS, sum_neg,
            literal_product_terms((X, Y, Z), input_negs))
        poly = Polynomial.from_terms([(3, (VC, VS)), (2, (VC, VS, M))])
        reduced = rules.apply(poly)
        for bits in itertools.product((0, 1), repeat=3):
            eff = [b ^ n for b, n in zip(bits, input_negs)]
            c_true = 1 if sum(eff) >= 2 else 0
            s_true = sum(eff) % 2
            assignment = {
                VC: c_true ^ carry_neg, VS: s_true ^ sum_neg,
                X: bits[0], Y: bits[1], Z: bits[2], M: 1,
            }
            assert reduced.evaluate(assignment) == poly.evaluate(assignment)


class TestAbsorptionRules:
    def test_positive_absorption_drops_input(self):
        rules = VanishingRuleSet()
        rules.add_carry_absorption_rule(VC, False, X, False)
        poly = Polynomial.from_terms([(4, (VC, X)), (1, (X,))])
        reduced = rules.apply(poly)
        assert reduced == 4 * Polynomial.variable(VC) + Polynomial.variable(X)

    def test_negated_input_vanishes(self):
        rules = VanishingRuleSet()
        rules.add_carry_absorption_rule(VC, False, X, True)
        poly = Polynomial.from_terms([(4, (VC, X))])
        assert rules.apply(poly).is_zero()

    def test_absorption_is_identity_on_consistent_points(self):
        rules = VanishingRuleSet()
        rules.add_carry_absorption_rule(VC, False, X, False)
        poly = Polynomial.from_terms([(4, (VC, X)), (2, (VC, Y))])
        reduced = rules.apply(poly)
        for x_val, y_val in itertools.product((0, 1), repeat=2):
            assignment = {VC: x_val & y_val, X: x_val, Y: y_val}
            assert reduced.evaluate(assignment) == poly.evaluate(assignment)


class TestRuleSetMechanics:
    def test_rejects_self_pair(self):
        rules = VanishingRuleSet()
        with pytest.raises(ValueError):
            rules.add_rule(VC, VC, [])

    def test_rejects_self_reproducing_rhs(self):
        rules = VanishingRuleSet()
        with pytest.raises(ValueError):
            rules.add_rule(VC, VS, [(1, (VC, VS))])

    def test_len_counts_rules(self):
        rules = VanishingRuleSet([(VC, False, VS, False)])
        assert len(rules) == 1
        rules.add_carry_absorption_rule(VC, False, X, False)
        assert len(rules) == 2

    def test_stats(self):
        rules = VanishingRuleSet([(VC, False, VS, False)])
        rules.apply(Polynomial.from_terms([(1, (VC, VS))]))
        stats = rules.stats()
        assert stats == {"rules": 1, "removed": 1, "rewritten": 0}


class TestRulesFromBlocks:
    def test_compiles_blocks(self, mult_4x4_dadda):
        from repro.core.atomic import detect_atomic_blocks

        blocks = detect_atomic_blocks(mult_4x4_dadda)
        basic = rules_from_blocks(blocks, extended=False)
        extended = rules_from_blocks(blocks, extended=True)
        ha_count = sum(1 for b in blocks if b.kind == "HA")
        assert len(basic) == ha_count
        assert len(extended) > len(basic)
