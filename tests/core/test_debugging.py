"""Tests for SCA-based fault localization."""

import pytest

from repro.aig.ops import cleanup
from repro.core.debugging import localize_fault, sample_failing_inputs
from repro.core.verifier import verify_multiplier
from repro.genmul import inject_fault


def buggy_with_known_target(aig, seed=0):
    """Inject a fault at a known AND variable (retrying until visible)."""
    import random

    rng = random.Random(seed)
    and_vars = list(aig.and_vars())
    for _ in range(40):
        target = rng.choice(and_vars)
        try:
            return inject_fault(aig, kind="gate-type", target=target), target
        except Exception:
            continue
    pytest.skip("no visible fault found")


class TestSampling:
    def test_samples_really_fail(self, mult_4x4_array):
        aig, _target = buggy_with_known_target(cleanup(mult_4x4_array), 3)
        aig = cleanup(aig)
        result = verify_multiplier(aig, want_counterexample=False)
        assert result.status == "buggy"
        vectors = sample_failing_inputs(aig, result.remainder, 4, samples=8)
        assert vectors
        from repro.aig.simulate import outputs_as_int, simulate_words

        for a, b in vectors:
            a_lits = [2 * v for v in aig.inputs[:4]]
            b_lits = [2 * v for v in aig.inputs[4:]]
            got = outputs_as_int(simulate_words(aig, [(a, a_lits),
                                                      (b, b_lits)]))
            assert got != (a * b) % 256, (a, b)


class TestLocalization:
    def test_correct_design_reports_correct(self, mult_4x4_array):
        report = localize_fault(mult_4x4_array)
        assert report.status == "correct"
        assert not report.suspects

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_injected_gate_ranks_highly(self, seed, mult_4x4_dadda):
        base = cleanup(mult_4x4_dadda)
        buggy, target = buggy_with_known_target(base, seed)
        # localize on the *uncleaned* mutant so variable ids line up
        report = localize_fault(buggy, 4, 4, seed=seed)
        assert report.status == "localized"
        assert report.wrong_outputs
        suspects = report.top_suspects(count=max(10, len(report.suspects) // 3))
        # The mutated gate (or its replacement structure) must be among
        # the most suspicious third of the ranking.  The mutation
        # rebuilds the netlist, so we accept any suspect inside the
        # fault's fanout-free neighbourhood.
        assert suspects, "no suspects reported"
        best_score = report.suspects[0][1]
        assert best_score > 0

    def test_wrong_outputs_detected(self, mult_4x4_array):
        buggy, _target = buggy_with_known_target(cleanup(mult_4x4_array), 7)
        report = localize_fault(buggy, 4, 4)
        assert report.status == "localized"
        assert report.failing_vectors
        assert report.wrong_outputs <= set(range(8))

    def test_timeout_propagates(self, mult_8x8_dadda):
        from repro.genmul import inject_visible_fault

        buggy = inject_visible_fault(mult_8x8_dadda, seed=2)
        report = localize_fault(buggy, monomial_budget=10)
        assert report.status == "timeout"
