"""The staged pipeline: VerifyConfig validation, exact/modular verdict
agreement, and the multimodular escalation strategy."""

import pickle

import pytest

from repro.aig.aig import Aig
from repro.core import Pipeline, VerifyConfig, verify_multiplier
from repro.errors import ConfigError
from repro.genmul import generate_multiplier
from repro.genmul.faults import FAULT_KINDS, inject_visible_fault
from repro.obs.recorder import Recorder


def sextuple_output_multiplier():
    """A 1x1 "multiplier" whose circuit word is 7*a*b instead of a*b.

    The remainder is ``6*a*b`` — zero mod 3 but non-zero exactly — which
    forces the escalation path when the first scheduled prime is 3.
    """
    aig = Aig()
    a = aig.add_input("a0")
    b = aig.add_input("b0")
    g = aig.add_and(a, b)
    for k in range(3):
        aig.add_output(g, name=f"o{k}")
    return aig


class TestVerifyConfig:
    def test_validation_is_early(self):
        # aig=None proves no pipeline work happens before validation
        with pytest.raises(ConfigError):
            verify_multiplier(None, method="bogus")
        with pytest.raises(ConfigError):
            verify_multiplier(None, ring="float64")
        with pytest.raises(ConfigError):
            verify_multiplier(None, ring="modular:91")
        with pytest.raises(ConfigError):
            verify_multiplier(None, primes=-1)
        with pytest.raises(ConfigError):
            verify_multiplier(None, prime_schedule=(4,))

    def test_frozen_and_picklable(self):
        config = VerifyConfig(ring="modular", primes=2)
        with pytest.raises(Exception):
            config.method = "static"
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_from_args(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["verify", "x.aag", "--method", "static", "--budget", "123",
             "--ring", "modular", "--primes", "2", "--threshold", "0.5"])
        config = VerifyConfig.from_args(args)
        assert config.method == "static"
        assert config.monomial_budget == 123
        assert config.ring == "modular"
        assert config.primes == 2
        assert config.initial_threshold == 0.5
        assert config.preflight

    def test_from_args_rejects_bad_ring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["verify", "x.aag", "--ring", "modular:15"])
        with pytest.raises(ConfigError):
            VerifyConfig.from_args(args)


class TestRingAgreement:
    @pytest.mark.parametrize("method", ["dyposub", "static"])
    def test_correct_design_agrees(self, mult_4x4_dadda, method):
        exact = verify_multiplier(mult_4x4_dadda, method=method)
        modular = verify_multiplier(mult_4x4_dadda, method=method,
                                    ring="modular")
        assert exact.status == modular.status == "correct"
        assert modular.stats["ring"].startswith("modular:")
        assert modular.stats["primes_tried"] == 1
        assert modular.stats["escalations"] == 0

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_faults_agree(self, mult_4x4_dadda, kind):
        buggy = inject_visible_fault(mult_4x4_dadda, kind=kind, seed=1)
        exact = verify_multiplier(buggy)
        modular = verify_multiplier(buggy, ring="modular")
        assert exact.status == modular.status == "buggy"
        # the modular counterexample is sound: non-zero mod p at the
        # witness implies the exact remainder is non-zero there
        assert modular.counterexample is not None
        assert exact.counterexample is not None

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_exact_ring_counterexample_per_fault(self, mult_4x4_array,
                                                 kind):
        buggy = inject_visible_fault(mult_4x4_array, kind=kind, seed=2)
        result = verify_multiplier(buggy, ring="exact")
        assert result.status == "buggy"
        assert result.counterexample is not None
        assert result.remainder.evaluate(dict(result.counterexample)) != 0


class TestEscalation:
    def test_zero_remainder_mod_first_prime_escalates(self):
        aig = sextuple_output_multiplier()
        recorder = Recorder()
        result = verify_multiplier(aig, preflight=False, ring="modular",
                                   prime_schedule=(3, 5),
                                   recorder=recorder)
        recorder.close()
        assert result.status == "buggy"
        assert result.stats["ring"] == "modular:5"
        assert result.stats["primes_tried"] == 2
        assert result.stats["escalations"] == 1
        escalations = [e for e in recorder.events
                       if e["ev"] == "escalation"]
        assert len(escalations) == 1
        assert escalations[0]["prime"] == 3
        assert escalations[0]["reason"] == "zero-remainder"
        rings = [e["name"] for e in recorder.events if e["ev"] == "ring"]
        assert rings == ["modular:3", "modular:5"]

    def test_buggy_never_verifies_correct_under_any_schedule(self):
        aig = sextuple_output_multiplier()
        schedules = [(3,), (3, 3), (3, 5), (5, 3), (7,), (3, 5, 7, 11)]
        for schedule in schedules:
            result = verify_multiplier(aig, preflight=False,
                                       ring="modular",
                                       prime_schedule=schedule,
                                       primes=len(schedule))
            assert result.status == "buggy", schedule

    def test_all_primes_vanish_falls_back_to_exact(self):
        # remainder 6ab vanishes mod 3 AND... use schedule (3,) so the
        # single prime vanishes, the CRT bound is far away, and the
        # exact confirmation run must deliver the buggy verdict
        aig = sextuple_output_multiplier()
        recorder = Recorder()
        result = verify_multiplier(aig, preflight=False, ring="modular",
                                   prime_schedule=(3,), primes=1,
                                   recorder=recorder)
        recorder.close()
        assert result.status == "buggy"
        assert result.stats["ring"] == "exact"
        rings = [e["name"] for e in recorder.events if e["ev"] == "ring"]
        assert rings == ["modular:3", "exact"]

    def test_correct_design_below_bound_escalates_to_exact(self,
                                                           mult_4x4_array):
        # tiny primes can never clear the 4x4 CRT bound (2**18), so a
        # correct design must be confirmed by the exact ring
        result = verify_multiplier(mult_4x4_array, ring="modular",
                                   prime_schedule=(3, 5), primes=2)
        assert result.status == "correct"
        assert result.stats["ring"] == "exact"
        assert result.stats["primes_tried"] == 2
        assert result.stats["escalations"] == 2

    def test_crt_bound_certifies_without_exact_run(self, mult_4x4_array):
        # one 61-bit prime comfortably exceeds 2*B = 2**18 for 4x4
        result = verify_multiplier(mult_4x4_array, ring="modular")
        assert result.status == "correct"
        assert result.stats["ring"].startswith("modular:")
        assert result.stats["primes_tried"] == 1

    def test_crt_bound_value(self, mult_4x4_array):
        from repro.aig.ops import cleanup

        aig = cleanup(mult_4x4_array)
        bound = Pipeline.crt_bound(aig)
        assert bound == 1 << (aig.num_inputs
                              + max(len(aig.outputs), aig.num_inputs) + 1)

    def test_bound_aware_prime_selection(self):
        from repro.poly import PRIMES

        pipeline = Pipeline(VerifyConfig(ring="modular", primes=4))
        # small bound: the word-size schedule already covers it
        small = pipeline.ring_schedule(1 << 34)
        assert [r.modulus for r in small] == list(PRIMES[:4])
        # wide bound: a single bound-covering prime replaces escalation
        wide = pipeline.ring_schedule(1 << 66)
        assert len(wide) == 1
        assert wide[0].modulus > 1 << 66
        # explicit modulus and explicit schedules stay untouched
        pinned = Pipeline(VerifyConfig(ring="modular:97", primes=2))
        assert [r.modulus for r in pinned.ring_schedule(1 << 66)] == \
            [97, PRIMES[0]]
        sched = Pipeline(VerifyConfig(ring="modular", prime_schedule=(3, 5),
                                      primes=2))
        assert [r.modulus for r in sched.ring_schedule(1 << 66)] == [3, 5]

    def test_wide_bound_single_run(self, mult_4x4_dadda):
        # force the bound-aware path by pretending the schedule cannot
        # cover the design: config widths don't change crt_bound, so use
        # ring_schedule directly plus an end-to-end run on a real design
        pipeline = Pipeline(VerifyConfig(ring="modular"))
        result = pipeline.run(mult_4x4_dadda)
        assert result.status == "correct"
        assert result.stats["primes_tried"] == 1
        assert result.stats["escalations"] == 0


class TestPipelineApi:
    def test_pipeline_direct(self, mult_4x4_dadda):
        pipeline = Pipeline(VerifyConfig(ring="modular", primes=1))
        result = pipeline.run(mult_4x4_dadda)
        assert result.status == "correct"
        # the same Pipeline object is reusable across designs
        buggy = inject_visible_fault(mult_4x4_dadda, seed=4)
        assert pipeline.run(buggy).status == "buggy"

    def test_timeout_under_modular_ring(self, mult_8x8_dadda):
        result = verify_multiplier(mult_8x8_dadda, ring="modular",
                                   monomial_budget=5)
        assert result.timed_out
        assert result.stats["budget_kind"] == "monomials"
        assert result.stats["ring"].startswith("modular:")

    def test_invariants_run_under_modular_ring(self, mult_4x4_dadda):
        result = verify_multiplier(mult_4x4_dadda, ring="modular",
                                   check_invariants=True)
        assert result.status == "correct"
        assert result.stats["invariants"]["checked_commits"] > 0

    def test_invariants_across_escalation(self, mult_4x4_array):
        # each escalation run gets a fresh monitor: no false RP003
        result = verify_multiplier(mult_4x4_array, ring="modular",
                                   prime_schedule=(3, 5), primes=2,
                                   check_invariants=True)
        assert result.status == "correct"

    def test_static_method_modular(self, mult_4x4_array):
        result = verify_multiplier(mult_4x4_array, method="static",
                                   ring="modular")
        assert result.status == "correct"


class TestCliRing:
    def test_verify_ring_modular(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.aag"
        assert main(["generate", "SP-AR-RC", "4", "-o", str(path)]) == 0
        assert main(["verify", str(path), "--ring", "modular"]) == 0
        assert main(["verify", str(path), "--ring", "modular:97",
                     "--primes", "2"]) == 0

    def test_verify_bad_ring_exits_2(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(path)])
        assert main(["verify", str(path), "--ring", "nope"]) == 2
        assert main(["verify", str(path), "--ring", "modular:6"]) == 2

    def test_batch_ring_modular(self, tmp_path):
        from repro.cli import main

        good = tmp_path / "good.aag"
        bad = tmp_path / "bad.aag"
        main(["generate", "SP-AR-RC", "4", "-o", str(good)])
        main(["inject", str(good), "--kind", "gate-type", "--seed", "0",
              "-o", str(bad)])
        code = main(["verify", str(good), str(bad), "--ring", "modular"])
        assert code == 1  # the faulty input dominates the exit code
