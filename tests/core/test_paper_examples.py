"""Reproductions of the paper's worked examples.

* Fig. 1 / Fig. 2 — the 2x2 multiplier and its backward rewriting to the
  zero remainder;
* Eq. (2)/(7)/(8)/(9) — HA and FA word-level relations;
* Example 3 — substituting word-level HA/FA polynomials barely grows
  ``SP_i``;
* Example 6 — the occurrence-count heuristic (k occurrences x
  k-monomial replacement can add k*(k-1) monomials);
* Example 7 — backtracking beats the pure occurrence order.
"""


from repro.core import verify_multiplier
from repro.genmul import generate_multiplier
from repro.poly import (Polynomial, VariablePool, monomial_vars,
                        parse_polynomial)


class TestFig1Fig2:
    def test_2x2_multiplier_verifies(self):
        """Fig. 2: backward rewriting of the 2x2 multiplier ends in the
        zero remainder."""
        aig = generate_multiplier("SP-AR-RC", 2)
        result = verify_multiplier(aig, 2, 2, record_trace=True)
        assert result.ok
        assert result.remainder.is_zero()

    def test_2x2_specification_shape(self):
        """SP = 8Z3 + 4Z2 + 2Z1 + Z0 - (2A1 + A0)(2B1 + B0)."""
        from repro.core.spec import multiplier_specification

        aig = generate_multiplier("SP-AR-RC", 2)
        spec = multiplier_specification(aig, 2, 2)
        # the input product part contributes exactly 4 monomials with
        # coefficients -1, -2, -2, -4 over input pairs
        input_vars = [sorted(monomial_vars(m)) for m, _c in spec.terms()]
        inputs = set(aig.inputs)
        input_part = [(vs, c)
                      for vs, (m, c) in zip(input_vars, spec.terms())
                      if m and set(vs) <= inputs]
        coeffs = sorted(c for _m, c in input_part)
        assert coeffs == [-4, -2, -2, -1]


class TestWordLevelRelations:
    def test_ha_relation_eq2(self):
        """2C + S = X + Y with C = XY and S = X + Y - 2XY."""
        pool = VariablePool()
        x, y = Polynomial.variable(pool["x"]), Polynomial.variable(pool["y"])
        carry = x * y
        total = x + y - 2 * (x * y)
        assert 2 * carry + total == x + y

    def test_fa_relations_eq7_8_9(self):
        pool = VariablePool()
        x, y, z = (Polynomial.variable(pool[n]) for n in "xyz")
        carry = x * y + x * z + y * z - 2 * (x * y * z)
        total = (x + y + z - 2 * (x * y) - 2 * (x * z) - 2 * (y * z)
                 + 4 * (x * y * z))
        assert 2 * carry + total == x + y + z          # eq. (9)
        for bits in range(8):
            assignment = {pool["x"]: bits & 1, pool["y"]: (bits >> 1) & 1,
                          pool["z"]: (bits >> 2) & 1}
            ones = sum(assignment.values())
            assert carry.evaluate(assignment) == (1 if ones >= 2 else 0)
            assert total.evaluate(assignment) == ones % 2


class TestExample3:
    def test_compact_substitution_grows_slowly(self):
        """Substituting an FA word-level polynomial adds at most one
        monomial; an HA adds none (Example 3)."""
        pool = VariablePool()
        sp, pool = parse_polynomial(
            "32*Out5 + 16*Out4 + 8*Out3 + 4*Out2 + 2*Out1 + Out0", pool)
        # F3: 2*Out5 + Out4 = W0 + W1 + W2
        w0, w1, w2 = pool["W0"], pool["W1"], pool["W2"]
        # emulate the compact step: 16*(2*Out5 + Out4) -> 16*(W0+W1+W2)
        after, _ = parse_polynomial(
            "16*W2 + 16*W1 + 16*W0 + 8*Out3 + 4*Out2 + 2*Out1 + Out0", pool)
        assert len(after) == len(sp) + 1
        # H3: 2*W0 + Out3 = W3 + W4
        after2, _ = parse_polynomial(
            "16*W2 + 16*W1 + 8*W3 + 8*W4 + 4*Out2 + 2*Out1 + Out0", pool)
        assert len(after2) == len(after) + 0


class TestExample6:
    def test_worst_case_growth(self):
        pool = VariablePool()
        p, pool = parse_polynomial("a + 4*a*b*c - 2*a*d - 2*a*d*c", pool)
        a = pool["a"]
        replacement, pool = parse_polynomial("x + y + z + x*z", pool)
        # a occurs 4 times; the replacement has 4 monomials: up to
        # k*(k-1) = 12 additional monomials -> 16 total
        grown = p.substitute(a, replacement)
        assert len(grown) == 16

    def test_low_occurrence_first_stays_small(self):
        pool = VariablePool()
        p, pool = parse_polynomial("a + 4*a*b*c - 2*a*d - 2*a*d*c", pool)
        a, b, c, d = (pool[n] for n in "abcd")
        q = p.substitute(b, parse_polynomial("x*y", pool)[0])
        assert len(q) <= 4
        q = q.substitute(c, parse_polynomial("x*z", pool)[0])
        assert len(q) <= 4
        q = q.substitute(d, parse_polynomial("x*y*z", pool)[0])
        assert q == Polynomial.variable(a)
        q = q.substitute(a, parse_polynomial("x + y + z + x*z", pool)[0])
        assert len(q) == 4


class TestExample7:
    def test_backtracking_prefers_the_cheaper_order(self):
        pool = VariablePool()
        p, pool = parse_polynomial("a*b*x + a*b*y - 2*a*b*x*y + a*b + a", pool)
        a, b = pool["a"], pool["b"]
        rep_b, pool = parse_polynomial("m + n - m*n", pool)
        rep_a, pool = parse_polynomial("x*y", pool)

        # substituting b first (4 occurrences) grows to 13 monomials
        after_b = p.substitute(b, rep_b)
        assert len(after_b) == 13
        assert len(after_b.substitute(a, rep_a)) == 4

        # substituting a first (5 occurrences) collapses to 2 monomials
        after_a = p.substitute(a, rep_a)
        assert len(after_a) == 2
        assert len(after_a.substitute(b, rep_b)) == 4

    def test_threshold_backtracking_finds_it(self):
        """Drive Algorithm 2's inner loop on Example 7 directly: with a
        10% threshold the engine must reject the b-first substitution
        and use a-first."""
        from repro.core.components import cone_component
        from repro.core.dynamic import dynamic_backward_rewriting
        from repro.core.rewriting import RewritingEngine
        from repro.core.vanishing import VanishingRuleSet

        pool = VariablePool()
        sp, pool = parse_polynomial(
            "a*b*x + a*b*y - 2*a*b*x*y + a*b + a", pool)
        a, b = pool["a"], pool["b"]
        rep_a, pool = parse_polynomial("x*y", pool)
        rep_b, pool = parse_polynomial("m + n - m*n", pool)
        comps = [
            cone_component(0, "FFC", a, sorted(rep_a.support()), rep_a, {a}),
            cone_component(1, "FFC", b, sorted(rep_b.support()), rep_b, {b}),
        ]
        engine = RewritingEngine(sp, comps, VanishingRuleSet(),
                                 record_trace=True)
        dynamic_backward_rewriting(engine)
        # the peak must follow the a-first path (never 13 monomials)
        assert engine.max_size < 13
