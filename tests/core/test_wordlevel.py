"""Tests for generic word-level reduction and adder verification."""

import pytest

from repro.aig.aig import Aig
from repro.core.spec import multiplier_specification
from repro.core.wordlevel import (
    is_boolean_valued,
    reduce_specification,
    verify_adder,
)
from repro.errors import VerificationError
from repro.genmul import generate_multiplier
from repro.genmul.fsa import FSA_BUILDERS
from repro.poly import Polynomial


def build_adder(name, width):
    aig = Aig(f"{name}_{width}")
    a_bits = aig.add_inputs(width, prefix="a")
    b_bits = aig.add_inputs(width, prefix="b")
    for bit in FSA_BUILDERS[name](aig, a_bits, b_bits):
        aig.add_output(bit)
    return aig


class TestReduceSpecification:
    def test_multiplier_spec_reduces_to_zero(self, mult_4x4_dadda):
        spec = multiplier_specification(mult_4x4_dadda, 4, 4)
        remainder, stats, _trace = reduce_specification(mult_4x4_dadda, spec)
        assert remainder.is_zero()
        assert stats["steps"] == stats["components"]

    def test_wrong_spec_leaves_remainder(self, mult_4x4_dadda):
        spec = multiplier_specification(mult_4x4_dadda, 4, 4) + 1
        remainder, _stats, _trace = reduce_specification(mult_4x4_dadda, spec)
        assert remainder == 1

    def test_custom_bit_level_property(self):
        """Verify p0 == a0 & b0 for a multiplier via a custom spec."""
        aig = generate_multiplier("SP-AR-RC", 3)
        from repro.core.gatepoly import literal_polynomial

        p0 = literal_polynomial(aig.outputs[0])
        a0 = Polynomial.variable(aig.inputs[0])
        b0 = Polynomial.variable(aig.inputs[3])
        spec = p0 - a0 * b0
        remainder, _s, _t = reduce_specification(aig, spec)
        assert remainder.is_zero()

    def test_unknown_variable_rejected(self, mult_4x4_array):
        with pytest.raises(VerificationError):
            reduce_specification(mult_4x4_array, Polynomial.variable(10_000))

    def test_static_method_available(self, mult_4x4_array):
        spec = multiplier_specification(mult_4x4_array, 4, 4)
        remainder, _s, _t = reduce_specification(mult_4x4_array, spec,
                                                 method="static")
        assert remainder.is_zero()


class TestBooleanValued:
    def test_boolean_polynomials(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert is_boolean_valued(x)
        assert is_boolean_valued(x * y)
        assert is_boolean_valued(x + y - x * y)      # OR
        assert is_boolean_valued(Polynomial.zero())
        assert is_boolean_valued(Polynomial.one())

    def test_non_boolean_polynomials(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        assert not is_boolean_valued(x + y)          # reaches 2
        assert not is_boolean_valued(2 * x)
        assert not is_boolean_valued(x - y)          # reaches -1


class TestVerifyAdder:
    @pytest.mark.parametrize("name", sorted(FSA_BUILDERS))
    def test_all_generated_adders_verify(self, name):
        aig = build_adder(name, 5)
        result = verify_adder(aig, 5, monomial_budget=500_000)
        assert result.ok, (name, result.status)

    def test_exact_mode_rejects_modular_adder(self):
        # a width-4 adder discarding carry is NOT an exact adder
        aig = build_adder("RC", 4)
        result = verify_adder(aig, 4, modular=False)
        assert result.status == "buggy"

    def test_exact_adder_with_carry_out(self):
        aig = Aig()
        a_bits = aig.add_inputs(4, prefix="a")
        b_bits = aig.add_inputs(4, prefix="b")
        from repro.aig.aig import FALSE

        carry = FALSE
        for a, b in zip(a_bits, b_bits):
            s, carry = aig.full_adder(a, b, carry)
            aig.add_output(s)
        aig.add_output(carry)  # expose the carry -> exact 5-bit sum
        result = verify_adder(aig, 4, modular=False)
        assert result.ok

    def test_buggy_adder_rejected(self):
        aig = build_adder("KS", 4)
        from repro.genmul import inject_visible_fault

        buggy = inject_visible_fault(aig, kind="gate-type", seed=3)
        result = verify_adder(buggy, 4, monomial_budget=500_000)
        assert result.status == "buggy"

    def test_budget_reported(self):
        aig = build_adder("CL", 8)
        result = verify_adder(aig, 8, monomial_budget=3)
        assert result.timed_out
